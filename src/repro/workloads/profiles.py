"""Traffic mixes and utilisation scaling.

A :class:`TrafficMix` is an ordered set of per-group sources.  The
experiments sweep the *aggregate utilisation* ``u = sum_i rho_i / C``
(the x-axis of Figures 4 and 6; see DESIGN.md on the unit convention):
:meth:`TrafficMix.at_utilization` rescales every source so the mix sums
to ``u`` while preserving the relative weights of the paper's natural
rates (64 kbps audio vs 1.5 Mbps video).

The paper's three mixes:

* ``AUDIO_MIX`` -- three 64 kbps audio streams (Figs. 4(a)/6(a), Table I);
* ``VIDEO_MIX`` -- three 1.5 Mbps MPEG-1 video streams (Figs. 4(b)/6(b),
  Table II);
* ``HETEROGENEOUS_MIX`` -- one video + two audio (Figs. 4(c)/6(c),
  Table III).

The paper feeds "the same stream" to every group, so by default one
realisation is generated per distinct source *type* and groups carrying
the same type share it (synchronised bursts -- this is what lets the
simulated worst case approach the analytic bounds).  Pass
``shared=False`` to draw independent realisations instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.flow import (
    AudioSource,
    CBRSource,
    OnOffSource,
    PacketTrace,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
)
from repro.utils.rng import RandomSource, derive_seed
from repro.utils.validation import check_positive

__all__ = [
    "TrafficMix",
    "MIX_KINDS",
    "make_mix",
    "AUDIO_MIX",
    "VIDEO_MIX",
    "HETEROGENEOUS_MIX",
]

#: Default MTU for fragmenting application frames into link packets, in
#: capacity-seconds (1500 bytes on a ~6 Mbps access link ~= 2 ms).
DEFAULT_MTU = 2e-3


@dataclass(frozen=True)
class TrafficMix:
    """An ordered set of per-group traffic sources.

    Attributes
    ----------
    name:
        Mix label (used in reports).
    sources:
        One :class:`~repro.simulation.flow.TrafficSource` per group; the
        ``rate`` attributes carry the *relative* weights.
    kinds:
        Parallel labels (e.g. ``("video", "audio", "audio")``) -- groups
        with equal labels share one trace realisation when ``shared``.
    """

    name: str
    sources: tuple[TrafficSource, ...]
    kinds: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.kinds):
            raise ValueError("sources and kinds must align")
        if not self.sources:
            raise ValueError("a mix needs at least one source")

    @property
    def k(self) -> int:
        """Number of groups (flows per multi-group host)."""
        return len(self.sources)

    @property
    def total_rate(self) -> float:
        return sum(s.rate for s in self.sources)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.kinds)) == 1

    # -- scaling ----------------------------------------------------------
    def at_utilization(self, u: float, capacity: float = 1.0) -> "TrafficMix":
        """Rescale so the aggregate sustained rate is ``u * capacity``.

        Relative weights between the streams are preserved (a video
        stream stays 1.5 Mbps / 64 kbps times heavier than an audio
        stream at every sweep point, as in the paper's figures).
        """
        check_positive(u, "u")
        check_positive(capacity, "capacity")
        factor = u * capacity / self.total_rate
        return TrafficMix(
            name=self.name,
            sources=tuple(s.scaled_to(s.rate * factor) for s in self.sources),
            kinds=self.kinds,
        )

    # -- realisation --------------------------------------------------------
    def generate_traces(
        self,
        horizon: float,
        rng: RandomSource = None,
        *,
        shared: bool = True,
        mtu: float = DEFAULT_MTU,
    ) -> list[PacketTrace]:
        """One packet trace per group.

        ``shared=True`` reproduces the paper's setup ("each of the three
        groups is fed with the same ... stream"): groups with the same
        kind *and rate* reuse a single realisation.
        """
        traces: list[PacketTrace] = []
        cache: dict[tuple[str, float], PacketTrace] = {}
        for g, (src, kind) in enumerate(zip(self.sources, self.kinds)):
            key = (kind, round(src.rate, 12))
            if shared and key in cache:
                traces.append(cache[key])
                continue
            seed = derive_seed(rng, "trace", self.name, kind if shared else g)
            trace = src.generate(horizon, rng=seed)
            if mtu is not None:
                trace = trace.fragment(mtu)
            cache[key] = trace
            traces.append(trace)
        return traces

    def envelopes(
        self,
        horizon: float,
        rng: RandomSource = None,
        *,
        shared: bool = True,
        mtu: float = DEFAULT_MTU,
    ) -> list[ArrivalEnvelope]:
        """Per-group empirical (sigma, rho) envelopes of one realisation.

        The regulators are configured from these, the way a deployment
        profiles its media streams before sizing token buckets.
        """
        traces = self.generate_traces(horizon, rng, shared=shared, mtu=mtu)
        return [
            ArrivalEnvelope(
                max(tr.empirical_sigma(src.rate), 1e-9), src.rate
            )
            for tr, src in zip(traces, self.sources)
        ]


#: Stream kinds accepted by :func:`make_mix`.  ``audio``/``video`` are
#: the paper's media streams at their natural rate weights; the generic
#: kinds (used by the scenario matrix) all carry unit weight so a mix of
#: them splits the aggregate utilisation evenly.
MIX_KINDS = ("audio", "video", "cbr", "poisson", "onoff")


def _make_source(kind: str) -> TrafficSource:
    if kind == "audio":
        return AudioSource(rate=0.064)
    if kind == "video":
        return VBRVideoSource(rate=1.5)
    if kind == "cbr":
        return CBRSource(rate=1.0, packet_size=0.004)
    if kind == "poisson":
        return PoissonSource(rate=1.0, packet_size=0.004)
    if kind == "onoff":
        # Duty cycle 1/3: bursts at 3x the sustained rate -- the bursty
        # workload family of the scenario matrix.
        return OnOffSource(
            peak_rate=3.0, mean_on=0.1, mean_off=0.2, packet_size=0.004
        )
    raise ValueError(f"unknown stream kind {kind!r}; expected one of {MIX_KINDS}")


def make_mix(name: str, kinds: Sequence[str]) -> TrafficMix:
    """Build a mix from kind labels (see :data:`MIX_KINDS`).

    Rates carry the paper's natural weights: video : audio =
    1.5 Mbps : 64 kbps (scaled later by :meth:`TrafficMix.at_utilization`);
    the generic kinds weigh 1.0 each.
    """
    sources = [_make_source(kind) for kind in kinds]
    return TrafficMix(name=name, sources=tuple(sources), kinds=tuple(kinds))


#: Three 64 kbps audio streams (Figs. 4(a)/6(a), Table I).
AUDIO_MIX = make_mix("3xaudio", ("audio", "audio", "audio"))
#: Three 1.5 Mbps MPEG-1 video streams (Figs. 4(b)/6(b), Table II).
VIDEO_MIX = make_mix("3xvideo", ("video", "video", "video"))
#: One video + two audio streams (Figs. 4(c)/6(c), Table III).
HETEROGENEOUS_MIX = make_mix("1video+2audio", ("video", "audio", "audio"))
