"""Figures 1 and 2 as executable checks."""

import numpy as np
import pytest

from repro.experiments.illustrations import (
    fig1_example,
    fig2_regulator_operation,
)


class TestFig1:
    def test_one_group_is_a_star(self):
        """C = 5 rho, one group: host 0 serves hosts 1-4 directly."""
        res = fig1_example()
        assert res.degree_bound_one_group == 5
        t = res.one_group_tree
        assert t.height == 2
        assert t.fanout()[0] == 4
        assert all(t.parent[h] == 0 for h in (1, 2, 3, 4))

    def test_two_groups_deepen_the_tree(self):
        """Two groups: degree floor(5rho/2rho) = 2; hosts 3,4 re-home
        under host 1 and the height grows to 3 -- the Fig. 1(b) drawing."""
        res = fig1_example()
        assert res.degree_bound_two_groups == 2
        t = res.two_group_tree
        assert t.height == 3
        assert t.fanout()[0] == 2
        assert t.parent[1] == 0 and t.parent[2] == 0
        assert t.parent[3] == 1 and t.parent[4] == 1

    def test_other_capacities(self):
        res = fig1_example(capacity_multiple=3.0)
        assert res.degree_bound_one_group == 3
        assert res.degree_bound_two_groups == 1
        # Degree 1 forces a pure chain.
        assert res.two_group_tree.height == 5


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig2_regulator_operation(sigma=0.1, rho=0.25, periods=4)

    def test_parameters_match_section_iii(self, fig2):
        # W = sigma/(1-rho), V = sigma/rho, P = W + V.
        assert fig2.working_period == pytest.approx(0.1 / 0.75)
        assert fig2.vacation == pytest.approx(0.1 / 0.25)
        assert fig2.period == pytest.approx(
            fig2.working_period + fig2.vacation
        )

    def test_output_below_trend(self, fig2):
        """The zig-zag never exceeds the (sigma, rho) trend line."""
        assert np.all(fig2.output_cum <= fig2.trend + 1e-9)

    def test_zigzag_slopes(self, fig2):
        """Slope 1 while working, 0 while on vacation (paper's Fig. 2)."""
        d_out = np.diff(fig2.output_cum)
        dt = fig2.t[1] - fig2.t[0]
        w, p = fig2.working_period, fig2.period
        mid = fig2.t[:-1] + dt / 2
        phase = mid % p
        working = (phase > dt) & (phase < w - dt)
        vacation = (phase > w + dt) & (phase < p - dt)
        # Early working bins before the backlog forms can pass through
        # at the arrival rate; once backlogged the slope is 1.
        assert np.all(d_out[vacation] <= 1e-12)
        busy = working & (fig2.trend[:-1] - fig2.output_cum[:-1] > 2 * dt)
        assert np.all(d_out[busy] >= dt * (1.0 - 1e-6))

    def test_touch_points_at_working_period_ends(self, fig2):
        """'The cross points ... indicate the time that all of the
        blocked data from the flow are output' -- they sit at m P + W."""
        w, p = fig2.working_period, fig2.period
        expected = {round(m * p + w, 6) for m in range(4)}
        # Each detected touch run must start within a grid step of an
        # expected point (ignore the trivial touch at t=0 if present).
        dt = fig2.t[1] - fig2.t[0]
        for touch in fig2.touch_times:
            if touch < w / 2:
                continue
            nearest = min(expected, key=lambda e: abs(e - touch))
            assert abs(nearest - touch) <= 3 * dt, (touch, nearest)

    def test_conservation_over_periods(self, fig2):
        """Over each full period the regulator outputs rho * P -- the
        conservation constraint that fixed lambda = 1/(1-rho)."""
        p = fig2.period
        dt = fig2.t[1] - fig2.t[0]
        per_period = int(round(p / dt))
        for m in range(1, 4):
            out = (
                fig2.output_cum[m * per_period]
                - fig2.output_cum[(m - 1) * per_period]
            )
            assert out == pytest.approx(0.25 * p, rel=0.02)
