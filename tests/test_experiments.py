"""End-to-end experiment harness at quick scale.

These are the integration tests of the reproduction: each checks the
*shape* the paper reports, on reduced (CI-speed) configurations.  The
full-scale artefacts live in benchmarks/.
"""

import pytest

from repro.experiments.config import Fig4Config, Fig6Config, TableConfig
from repro.experiments.multigroup import run_fig6
from repro.experiments.single_host import run_fig4
from repro.experiments.theory import (
    height_bound_table,
    improvement_ratio_table,
    threshold_table,
)
from repro.experiments.trees import run_tree_table
from repro.workloads.profiles import AUDIO_MIX, HETEROGENEOUS_MIX, VIDEO_MIX


@pytest.fixture(scope="module")
def fig4_video():
    return run_fig4(VIDEO_MIX, Fig4Config.quick())


@pytest.fixture(scope="module")
def fig6_video():
    return run_fig6(VIDEO_MIX, Fig6Config.quick())


class TestFig4:
    def test_sigma_rho_curve_rises(self, fig4_video):
        sr = fig4_video.sigma_rho_series
        assert sr[-1] > sr[0]

    def test_lambda_wins_at_heavy_load(self, fig4_video):
        assert (
            fig4_video.points[-1].wdb_sigma_rho_lambda
            < fig4_video.points[-1].wdb_sigma_rho
        )

    def test_sigma_rho_wins_at_light_load(self, fig4_video):
        assert (
            fig4_video.points[0].wdb_sigma_rho
            < fig4_video.points[0].wdb_sigma_rho_lambda
        )

    def test_crossover_near_theory(self, fig4_video):
        """Paper: simulated threshold a little below/near 0.73-0.79."""
        assert fig4_video.crossover is not None
        assert abs(
            fig4_video.crossover - fig4_video.theoretical_threshold_aggregate
        ) < 0.2

    def test_improvement_factor_significant(self, fig4_video):
        """Paper reports ~2.8-3.2x; demand at least 1.5x at quick scale."""
        assert fig4_video.max_improvement > 1.5

    def test_heterogeneous_mix_runs(self):
        res = run_fig4(
            HETEROGENEOUS_MIX,
            Fig4Config(utilizations=(0.45, 0.95), horizon=4.0, dt=1e-3),
        )
        assert not res.homogeneous
        assert res.theoretical_threshold_aggregate == pytest.approx(0.83, abs=0.01)

    def test_des_backend_available(self):
        res = run_fig4(
            VIDEO_MIX,
            Fig4Config(utilizations=(0.95,), horizon=3.0, backend="des"),
        )
        assert res.points[0].wdb_sigma_rho > 0


class TestFig6:
    def test_all_schemes_measured(self, fig6_video):
        for p in fig6_video.points:
            assert set(p.wdb) == set(fig6_video.schemes)
            assert all(v >= 0 for v in p.wdb.values())

    def test_sigma_rho_dsct_degrades_with_load(self, fig6_video):
        sr = fig6_video.series("dsct+sigma-rho")
        assert sr[-1] > sr[0]

    def test_lambda_dsct_wins_at_heavy_load(self, fig6_video):
        last = fig6_video.points[-1].wdb
        assert last["dsct+sigma-rho-lambda"] < last["dsct+sigma-rho"]

    def test_capacity_aware_between_at_heavy_load(self, fig6_video):
        """Paper Fig 6: at high rate, lambda < capacity-aware < sigma-rho."""
        last = fig6_video.points[-1].wdb
        assert last["dsct+sigma-rho-lambda"] < last["capacity-aware-dsct"]

    def test_regulated_tree_heights_rate_independent(self, fig6_video):
        hs = fig6_video.tree_heights["dsct+sigma-rho-lambda"]
        first = list(hs.values())[0]
        assert all(v == first for v in hs.values())


class TestTables:
    def test_table_shape(self):
        res = run_tree_table("3xvideo", TableConfig.quick())
        assert res.capacity_aware_grows
        assert res.regulated_constant
        rows = res.rows()
        assert rows[0][0].startswith("Capacity-aware")
        assert len(rows[0]) == 1 + len(res.utilizations)

    def test_regulated_height_near_lemma2(self):
        res = run_tree_table("3xaudio", TableConfig.quick())
        from repro.core.multicast_bounds import dsct_height_bound

        bound = dsct_height_bound(TableConfig.quick().n_hosts, 3)
        assert all(h <= bound + 1 for h in res.regulated_heights)


class TestTheory:
    def test_threshold_table_converges(self):
        tt = threshold_table()
        last = tt["rows"][-1]
        assert last["homogeneous"] == pytest.approx(
            tt["limit_homogeneous"], abs=1e-3
        )
        assert last["heterogeneous"] == pytest.approx(
            tt["limit_heterogeneous"], abs=1e-3
        )

    def test_improvement_rows_beat_lower_bound(self):
        for row in improvement_ratio_table():
            assert row["ratio"] >= row["lower_bound"]

    def test_height_bound_table_contains_paper_n(self):
        rows = height_bound_table()
        paper = next(r for r in rows if r["n"] == 665)
        assert paper["height_bound"] == 7
