#!/usr/bin/env bash
# Nightly/CI baseline gate: run the tier-1 smoke campaign (the same
# 24-cell matrix tests/test_runtime_campaign.py keeps alive) against
# the pinned baseline store checked in at ci/baseline_smoke, and fail
# on any soundness or perf-budget regression.
#
# Usage: ci/gate.sh [STORE_DIR]
#   STORE_DIR  where to write the fresh campaign store
#              (default: a temporary directory)
#
# Exit status: 0 when the campaign is clean AND the diff against the
# pinned baseline shows no regression; 1 otherwise (the CLI's
# --baseline flag gates in one shot).
#
# To re-pin the baseline after an intentional change:
#   PYTHONPATH=src python -m repro.experiments.cli scenarios run \
#     --count 24 --seed 11 --no-corpus --store ci/baseline_smoke
set -euo pipefail
cd "$(dirname "$0")/.."

STORE="${1:-$(mktemp -d)/smoke}"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
  scenarios run \
  --count 24 --seed 11 --no-corpus \
  --jobs 2 \
  --store "$STORE" \
  --baseline ci/baseline_smoke

echo "baseline gate: clean (store: $STORE)"
