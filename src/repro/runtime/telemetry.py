"""Dependency-free campaign telemetry: spans, counters, trace export.

When a thousand-cell campaign is slow, the verdict records say nothing
about *where* the time went: trace realisation?  kernel evaluation?
padding waste in a packed group?  queueing behind a mispredicted chunk?
This module is the observability layer the whole runtime threads
through -- per-cell phase timings, named counters, and per-run
aggregates -- with two consumers on top (``scenarios report`` and the
Chrome-trace export behind ``scenarios run --trace``).

Design constraints, in priority order:

* **Near-zero overhead.**  Collection is plain attribute writes and
  dict bumps against a thread-local active cell; no I/O, no locks, no
  string formatting on the hot path.  Disabled collection
  (:func:`set_enabled`) costs one ``None`` check per call site.
* **Worker-side, picklable.**  A :class:`CellTelemetry` is built where
  the cell runs (any process) and travels back with its
  :class:`~repro.runtime.executor.TaskResult`; it holds only
  primitives.  Timestamps are ``time.perf_counter()`` values --
  ``CLOCK_MONOTONIC`` on Linux, shared across forked workers -- so one
  campaign's cells line up on a common timeline per machine.
* **Verdicts stay byte-identical.**  Telemetry never enters a store's
  ``results`` records or ``summary.json``; it persists to a separate
  ``telemetry`` file/table (see :meth:`ResultStore.append_telemetry`),
  so every existing determinism gate is untouched by construction.
* **No import cycles.**  This module imports only the stdlib.  Runtime
  and scenario modules may import it at module level; the simulation
  layer (imported *during* ``repro.runtime``'s own init) reaches it
  through function-local imports at per-cell granularity.

Collection protocol
-------------------
``begin_cell(name)`` installs the thread's active cell and returns it
(or ``None`` when disabled); ``end_cell`` stamps its duration and
clears the slot.  Inside the window, :func:`span` context managers
record named phases, :func:`counter_add` bumps named counters, and
:func:`extra_set` attaches string/number annotations -- all no-ops when
no cell is active, so instrumented library code needs no conditionals.

Record kinds (the ``telemetry`` table/file schema)
--------------------------------------------------
``{"kind": "cell", ...}``
    One per evaluated cell: worker pid, start/duration, spans
    (``[name, start_offset, duration]``), per-phase totals, counters,
    annotations, and the scheduler's ``predicted_cost`` next to the
    recorded ``wall_time`` (the calibration residual's two sides).
``{"kind": "grouping", ...}``
    One per SoA group evaluated by the grouped cell matrix: group key,
    cell count, lanes, padding-waste ratio, prep/eval seconds.
``{"kind": "grouping_summary", ...}``
    One per grouped run: grouped/fallback cell totals, per-reason
    fallback counts, source-cache hit rate.
``{"kind": "fit", ...}``
    One per cost-model refit: per-backend acceptance, and the
    degenerate samples the fit dropped, by reason -- "no silent caps".
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

__all__ = [
    "CellTelemetry",
    "set_enabled",
    "enabled",
    "begin_cell",
    "end_cell",
    "active_cell",
    "span",
    "counter_add",
    "extra_set",
    "record_engine",
    "cell_record",
    "phase_breakdown",
    "counter_totals",
    "attempt_rows",
    "store_retry_rows",
    "lease_rows",
    "lease_summary",
    "top_slowest",
    "calibration_rows",
    "grouping_rows",
    "fit_rows",
    "report_delta",
    "chrome_trace_events",
    "write_chrome_trace",
]

#: Process-wide kill switch (``scenarios run --no-telemetry``).  Pool
#: executors additionally ship the flag with each chunk so spawned
#: workers agree with the parent regardless of start method.
_ENABLED = True

_TLS = threading.local()


def set_enabled(flag: bool) -> None:
    """Turn collection on/off process-wide (workers inherit via the
    executor's per-chunk flag, not this global)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


@dataclass
class CellTelemetry:
    """One cell's collected telemetry (mutable, picklable primitives).

    ``spans`` hold worker-timeline slices ``[name, start_offset,
    duration]`` (offsets relative to :attr:`t0`; the trace export's
    unit of drawing); ``phases`` hold per-phase-name duration totals
    (the report's unit of aggregation -- parent-side amortised phases
    like the vectorised bounds pass land here without a slice).
    """

    name: str
    #: Worker process id (one trace track per worker).
    worker: int = 0
    #: ``time.perf_counter()`` at cell start (CLOCK_MONOTONIC: one
    #: timeline across forked workers on the same machine).
    t0: float = 0.0
    #: Total seconds attributed to this cell.
    dur: float = 0.0
    spans: list = field(default_factory=list)
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float, *, offset: Optional[float] = None) -> None:
        """Credit ``seconds`` to a phase; with ``offset`` also record a
        timeline span (used when kernel time is amortised over a group
        after the fact)."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        if offset is not None:
            self.spans.append([name, offset, seconds])


def begin_cell(name: str) -> Optional[CellTelemetry]:
    """Install a fresh active cell for this thread (``None`` when
    collection is disabled)."""
    if not _ENABLED:
        return None
    tel = CellTelemetry(name=name, worker=os.getpid(), t0=time.perf_counter())
    _TLS.cell = tel
    return tel


def end_cell(tel: Optional[CellTelemetry]) -> None:
    """Stamp the cell's duration and clear the active slot."""
    if tel is None:
        return
    tel.dur = time.perf_counter() - tel.t0
    if getattr(_TLS, "cell", None) is tel:
        _TLS.cell = None


def active_cell() -> Optional[CellTelemetry]:
    return getattr(_TLS, "cell", None)


@contextmanager
def span(name: str):
    """Time a named phase of the active cell (no-op without one)."""
    cell = getattr(_TLS, "cell", None)
    if cell is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - start
        cell.spans.append([name, start - cell.t0, dur])
        cell.phases[name] = cell.phases.get(name, 0.0) + dur


def counter_add(name: str, n: int = 1) -> None:
    """Bump a named counter on the active cell (no-op without one)."""
    cell = getattr(_TLS, "cell", None)
    if cell is not None:
        cell.counters[name] = cell.counters.get(name, 0) + n


def extra_set(name: str, value: Any) -> None:
    """Attach an annotation to the active cell (no-op without one)."""
    cell = getattr(_TLS, "cell", None)
    if cell is not None:
        cell.extra[name] = value


def record_engine(sim: Any) -> None:
    """Fold a finished :class:`~repro.simulation.engine.Simulator`'s
    event/batch counters into the active cell (called once per cell by
    the simulate functions; no-op without an active cell)."""
    cell = getattr(_TLS, "cell", None)
    if cell is None:
        return
    c = cell.counters
    for name in (
        "events_processed",
        "events_scheduled",
        "cancelled_events",
        "busy_periods",
        "receive_batch_calls",
    ):
        n = getattr(sim, name, 0)
        if n:
            c[name] = c.get(name, 0) + int(n)


# ----------------------------------------------------------------------
# Record building & aggregation (the ``scenarios report`` substrate)
# ----------------------------------------------------------------------
def cell_record(tel: CellTelemetry, **fields_: Any) -> dict:
    """The persisted ``kind="cell"`` telemetry record."""
    rec = {
        "kind": "cell",
        "name": tel.name,
        "worker": int(tel.worker),
        "t0": float(tel.t0),
        "dur": float(tel.dur),
        "spans": [[str(n), float(o), float(d)] for n, o, d in tel.spans],
        "phases": {str(k): float(v) for k, v in tel.phases.items()},
        "counters": {str(k): int(v) for k, v in tel.counters.items()},
        "extra": dict(tel.extra),
    }
    rec.update(fields_)
    return rec


def _cells(records: Iterable[Mapping]) -> list[Mapping]:
    return [r for r in records if isinstance(r, Mapping) and r.get("kind") == "cell"]


def phase_breakdown(records: Iterable[Mapping]) -> list[dict]:
    """Per-backend phase totals: one row per ``eff_backend``, phase
    columns summed over its cells, sorted by total descending."""
    by_backend: dict[str, dict] = {}
    for rec in _cells(records):
        backend = str(rec.get("eff_backend") or "?")
        row = by_backend.setdefault(
            backend, {"backend": backend, "cells": 0, "phases": {}, "total": 0.0}
        )
        row["cells"] += 1
        phases = rec.get("phases") or {}
        if isinstance(phases, Mapping):
            for name, secs in phases.items():
                if isinstance(secs, (int, float)):
                    row["phases"][str(name)] = (
                        row["phases"].get(str(name), 0.0) + float(secs)
                    )
                    row["total"] += float(secs)
    return sorted(by_backend.values(), key=lambda r: -r["total"])


def counter_totals(records: Iterable[Mapping]) -> dict[str, int]:
    """Engine/runtime counters summed across all cell records."""
    totals: dict[str, int] = {}
    for rec in _cells(records):
        counters = rec.get("counters") or {}
        if isinstance(counters, Mapping):
            for name, n in counters.items():
                if isinstance(n, (int, float)):
                    totals[str(name)] = totals.get(str(name), 0) + int(n)
    return totals


def attempt_rows(records: Iterable[Mapping]) -> list[dict]:
    """Retry-ledger records (``kind == "attempts"``) from a campaign.

    One row per cell that needed more than one attempt (or recorded
    injected faults), with its final ``disposition`` -- ``recovered``
    or ``poison`` -- and the per-attempt error heads in ``faults``.
    """
    out: list[dict] = []
    for rec in records:
        if rec.get("kind") == "attempts" and isinstance(rec, Mapping):
            out.append(dict(rec))
    return out


def store_retry_rows(records: Iterable[Mapping]) -> list[dict]:
    """Store-write retry records (``kind == "store_retries"``)."""
    return [
        dict(rec)
        for rec in records
        if rec.get("kind") == "store_retries" and isinstance(rec, Mapping)
    ]


def lease_rows(records: Iterable[Mapping]) -> list[dict]:
    """Per-lease ledger records (``kind == "lease"``) from coordinator
    workers: which worker ran which lease, how many cells it evaluated,
    and how many worker deaths/steals the lease survived -- the
    reclaimed-lease audit trail ``scenarios report`` renders."""
    return [
        dict(rec)
        for rec in records
        if isinstance(rec, Mapping) and rec.get("kind") == "lease"
    ]


def lease_summary(records: Iterable[Mapping]) -> dict:
    """The coordinator's run-level lease digest (``kind == "leases"``):
    planned/done/stolen/split/poisoned lease counts plus worker respawn
    accounting.  Last coordinator run wins; ``{}`` when none ran."""
    summary: dict = {}
    for rec in records:
        if isinstance(rec, Mapping) and rec.get("kind") == "leases":
            summary = dict(rec)
    return summary


def top_slowest(records: Iterable[Mapping], n: int = 10) -> list[Mapping]:
    """The ``n`` dearest cells by recorded duration."""
    cells = _cells(records)
    cells.sort(key=lambda r: -float(r.get("dur") or 0.0))
    return cells[:n]


def calibration_rows(records: Iterable[Mapping]) -> list[dict]:
    """Cost-model calibration per backend: actual vs predicted seconds.

    ``median_ratio`` is the per-cell ``actual / predicted`` median --
    1.0 means the scheduler's coefficients match this machine; the
    spread (p10/p90 of the ratio) shows how trustworthy chunk planning
    was.  Cells without a prediction are skipped (and counted).
    """
    groups: dict[str, list[tuple[float, float]]] = {}
    skipped = 0
    for rec in _cells(records):
        predicted = rec.get("predicted_cost")
        actual = rec.get("wall_time", rec.get("dur"))
        if (
            not isinstance(predicted, (int, float))
            or not isinstance(actual, (int, float))
            or predicted <= 0
        ):
            skipped += 1
            continue
        backend = str(rec.get("eff_backend") or "?")
        groups.setdefault(backend, []).append((float(actual), float(predicted)))
    rows = []
    for backend, pairs in groups.items():
        ratios = sorted(a / p for a, p in pairs)
        mid = len(ratios) // 2
        median = (
            ratios[mid]
            if len(ratios) % 2
            else 0.5 * (ratios[mid - 1] + ratios[mid])
        )
        rows.append(
            {
                "backend": backend,
                "cells": len(pairs),
                "actual_total": sum(a for a, _ in pairs),
                "predicted_total": sum(p for _, p in pairs),
                "median_ratio": median,
                "p10_ratio": ratios[max(0, int(0.1 * (len(ratios) - 1)))],
                "p90_ratio": ratios[int(0.9 * (len(ratios) - 1))],
            }
        )
    rows.sort(key=lambda r: -r["actual_total"])
    if skipped:
        rows.append({"backend": "(no prediction)", "cells": skipped})
    return rows


def grouping_rows(records: Iterable[Mapping]) -> dict:
    """Grouping-efficiency digest from ``grouping``/``grouping_summary``
    records: per-group rows plus run totals."""
    groups = [
        dict(r)
        for r in records
        if isinstance(r, Mapping) and r.get("kind") == "grouping"
    ]
    summary: dict = {}
    for r in records:
        if isinstance(r, Mapping) and r.get("kind") == "grouping_summary":
            summary = dict(r)  # last run wins
    return {"groups": groups, "summary": summary}


def fit_rows(records: Iterable[Mapping]) -> list[dict]:
    """All cost-model refit reports persisted in the store."""
    return [
        dict(r)
        for r in records
        if isinstance(r, Mapping) and r.get("kind") == "fit"
    ]


def report_delta(
    base_records: Iterable[Mapping], cand_records: Iterable[Mapping]
) -> dict:
    """Cross-campaign telemetry deltas (``scenarios report A B``).

    The observability twin of ``scenarios diff``: where that compares
    verdicts, this compares *where the time went* between two stores.
    Returns ``{"phases": [...], "calibration": [...]}``:

    ``phases``
        One row per ``(backend, phase)`` seen in either store, with
        per-cell phase seconds on both sides (totals are normalised by
        cell count, so campaigns of different sizes compare fairly) and
        ``ratio = cand_per_cell / base_per_cell`` when both sides have
        data -- a realise-phase ratio of 0.25 means trace synthesis got
        4x faster per cell.

    ``calibration``
        One row per backend with the cost model's ``median_ratio``
        (actual/predicted) on both sides and the drift between them --
        a calibration trend across campaigns.
    """
    base_records = list(base_records)
    cand_records = list(cand_records)
    base_b = {r["backend"]: r for r in phase_breakdown(base_records)}
    cand_b = {r["backend"]: r for r in phase_breakdown(cand_records)}
    phases: list[dict] = []
    for backend in sorted(set(base_b) | set(cand_b)):
        b = base_b.get(backend, {})
        c = cand_b.get(backend, {})
        names = sorted(set(b.get("phases", {})) | set(c.get("phases", {})))
        for name in names:
            b_cells = int(b.get("cells", 0))
            c_cells = int(c.get("cells", 0))
            b_total = float(b.get("phases", {}).get(name, 0.0))
            c_total = float(c.get("phases", {}).get(name, 0.0))
            row: dict = {
                "backend": backend,
                "phase": name,
                "base_cells": b_cells,
                "cand_cells": c_cells,
                "base_total": b_total,
                "cand_total": c_total,
                "base_per_cell": b_total / b_cells if b_cells else None,
                "cand_per_cell": c_total / c_cells if c_cells else None,
            }
            if row["base_per_cell"] and row["cand_per_cell"] is not None:
                row["ratio"] = row["cand_per_cell"] / row["base_per_cell"]
            phases.append(row)
    base_c = {
        r["backend"]: r
        for r in calibration_rows(base_records)
        if "median_ratio" in r
    }
    cand_c = {
        r["backend"]: r
        for r in calibration_rows(cand_records)
        if "median_ratio" in r
    }
    calibration: list[dict] = []
    for backend in sorted(set(base_c) | set(cand_c)):
        b = base_c.get(backend)
        c = cand_c.get(backend)
        row = {
            "backend": backend,
            "base_median_ratio": b["median_ratio"] if b else None,
            "cand_median_ratio": c["median_ratio"] if c else None,
        }
        if b and c:
            row["drift"] = c["median_ratio"] - b["median_ratio"]
        calibration.append(row)
    return {"phases": phases, "calibration": calibration}


# ----------------------------------------------------------------------
# Chrome trace-event export (chrome://tracing / Perfetto)
# ----------------------------------------------------------------------
def chrome_trace_events(records: Iterable[Mapping]) -> dict:
    """Trace-event JSON over cell records: one track (``tid``) per
    worker pid, one complete (``"X"``) slice per cell and per phase
    span, timestamps in microseconds relative to the earliest cell.

    The format is the Chrome trace-event "JSON object" flavour --
    ``{"traceEvents": [...]}`` -- loadable in ``chrome://tracing`` and
    Perfetto as-is.
    """
    cells = _cells(records)
    events: list[dict] = []
    if not cells:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    base = min(float(r.get("t0") or 0.0) for r in cells)
    workers = sorted({int(r.get("worker") or 0) for r in cells})
    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "campaign"},
        }
    )
    for w in workers:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": w,
                "args": {"name": f"worker {w}"},
            }
        )
    for rec in cells:
        t0 = float(rec.get("t0") or 0.0)
        tid = int(rec.get("worker") or 0)
        events.append(
            {
                "ph": "X",
                "name": str(rec.get("name") or "?"),
                "cat": "cell",
                "ts": (t0 - base) * 1e6,
                "dur": float(rec.get("dur") or 0.0) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": {
                    "backend": rec.get("eff_backend"),
                    "counters": rec.get("counters") or {},
                    "extra": rec.get("extra") or {},
                },
            }
        )
        for entry in rec.get("spans") or []:
            try:
                name, off, dur = entry
            except (TypeError, ValueError):
                continue
            events.append(
                {
                    "ph": "X",
                    "name": str(name),
                    "cat": "phase",
                    "ts": (t0 + float(off) - base) * 1e6,
                    "dur": float(dur) * 1e6,
                    "pid": 0,
                    "tid": tid,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Any, records: Iterable[Mapping]) -> int:
    """Write the trace-event JSON for ``records`` to ``path``; returns
    the event count."""
    trace = chrome_trace_events(records)
    with open(path, "w") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return len(trace["traceEvents"])
