"""Lease-based work-stealing coordinator for multi-worker campaigns.

PR 8 made a *single* campaign process crash-consistent: bounded
retries, per-cell timeouts, torn-write quarantine, byte-identical
summaries under injected chaos.  This module lifts the same contract
to *many* processes sharing one store.  The coordination substrate is
the store itself -- a ``leases`` + ``heartbeats`` table pair created
``IF NOT EXISTS`` on connect (old stores upgrade in place; the JSONL
backend hosts them in a ``leases.sqlite`` sidecar because its record
files are single-writer by design).

The protocol, end to end:

1. The coordinator plans **fingerprint-range leases** over the cells
   missing from the store, sized by :class:`~repro.runtime.cost
   .CellCostModel` via :func:`~repro.runtime.cost.plan_leases` --
   dearest cells lead, leases shrink toward the tail (guided
   self-scheduling, the chunk planner's idiom lifted one level up).
   Each lease row carries its cells' full specs, so workers need
   nothing but the store URL.
2. **Workers** (``scenarios work``, or :func:`work_store` in-process)
   claim the dearest open lease with an atomic compare-and-swap,
   renew its deadline and their heartbeat *between* cells -- never
   during one, so a hung cell lapses the lease -- evaluate cells
   through the ordinary :func:`~repro.scenarios.runner.evaluate_cell`
   path, and commit whole-lease batches through the campaign's
   crash-consistent :func:`~repro.runtime.campaign
   .append_results_with_retry`.
3. A lease whose holder stops renewing (SIGKILLed, hung, partitioned)
   is **stolen** by any live worker once its deadline passes; stealing
   increments the lease's ``deaths``.  A stolen multi-cell lease is
   split into single-cell children so the culprit cell is cornered
   alone; a cell whose lease out-kills the death budget is routed to
   the **poison channel** with an error record instead of wedging the
   campaign.  The coordinator SIGKILLs workers whose heartbeat lapses
   far beyond the TTL and respawns replacements under a bounded
   budget.
4. A **restarted coordinator** supersedes whatever leases its
   predecessor left behind (carrying each cell's accumulated death
   count), re-plans the still-missing cells, and converges.

Determinism is the invariant the whole design leans on: a cell's RNG
derives from ``(campaign seed, spec fingerprint)`` and its store
record is keyed by content, so leases only change *who* runs a cell
-- never its seed, verdict, or record bytes.  Re-runs after a steal
append records identical to the ones the dead worker may already have
committed (last-record-wins), which is why ``summary.json`` after any
combination of kills, hangs, steals and restarts is byte-identical to
an undisturbed serial run -- the property ``ci/gate.sh`` enforces.

Reclaimed work re-enters evaluation with ``start_attempt = deaths +
1``, the lease-level twin of the executor's pool-death accounting: an
injected fault that fired on attempt 1 (``FaultPlan.max_attempt``)
stays silent when the stolen lease re-runs, so bounded chaos provably
converges.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.runtime import faults, telemetry
from repro.runtime.campaign import append_results_with_retry, outcome_record
from repro.runtime.cost import CellCostModel, plan_leases
from repro.runtime.executor import (
    MIN_DEATH_EXPOSURES,
    RetryPolicy,
    TaskResult,
    _error_head,
    run_one_with_retry,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.store import (
    ResultStore,
    cell_key,
    open_store,
    spec_fingerprint,
)
from repro.scenarios.spec import Scenario, scenario_from_dict

__all__ = [
    "DEFAULT_LEASE_TTL",
    "RECOVERY_ROUNDS",
    "WorkerReport",
    "CoordinatorReport",
    "allowed_deaths",
    "plan_campaign_leases",
    "work_store",
    "run_coordinator",
]

#: Default lease time-to-live in seconds.  Guidance: comfortably above
#: the slowest single cell's full attempt budget (attempts x timeout +
#: backoff), because workers renew between cells only -- a TTL shorter
#: than one cell makes healthy leases look dead and double-runs them
#: (harmlessly, but wastefully).
DEFAULT_LEASE_TTL = 30.0

#: Bounded final-convergence rounds: after all workers exit, cells
#: still missing a record (e.g. lost to a torn concurrent JSONL
#: append) are re-leased to a fresh worker this many times before the
#: coordinator reports non-convergence.
RECOVERY_ROUNDS = 3


def allowed_deaths(retry: Optional[RetryPolicy]) -> int:
    """How many worker deaths a lease survives before its cells are
    poisoned -- the lease-level mirror of the executor's pool-death
    budget (``max(MIN_DEATH_EXPOSURES, retry.max_attempts)``)."""
    return max(MIN_DEATH_EXPOSURES, retry.max_attempts if retry else 0)


def _cell_payload(sc: Scenario, cost: float) -> dict:
    """The self-contained per-cell entry a lease row carries."""
    return {
        "key": cell_key(sc),
        "fingerprint": spec_fingerprint(sc),
        "name": sc.name,
        "cost": float(cost),
        "spec": dataclasses.asdict(sc),
    }


def plan_campaign_leases(
    store: ResultStore,
    scenarios: Sequence[Scenario],
    workers: int,
    *,
    cost_model: Optional[CellCostModel] = None,
    max_cells: int = 16,
    deaths: Optional[dict] = None,
) -> list[int]:
    """Insert open leases covering ``scenarios`` and return their ids.

    Lease boundaries come from :func:`~repro.runtime.cost.plan_leases`
    over the cost model's estimates; ``deaths`` (cell key -> count)
    carries kill history across a coordinator restart -- a new lease
    inherits the worst death count among its cells.
    """
    if not scenarios:
        return []
    model = cost_model or CellCostModel()
    costs = model.estimate_many(scenarios)
    rows = []
    for group in plan_leases(costs, workers, max_cells=max_cells):
        cells = [_cell_payload(scenarios[i], costs[i]) for i in group]
        inherited = (
            max(int(deaths.get(c["key"], 0)) for c in cells) if deaths else 0
        )
        rows.append(
            {
                "cells": cells,
                "cost": float(sum(c["cost"] for c in cells)),
                "deaths": inherited,
            }
        )
    return store.leases().add_many(rows)


# ----------------------------------------------------------------------
# The worker half (``scenarios work``)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerReport:
    """One worker's lease ledger (returned by :func:`work_store`)."""

    worker_id: str
    leases_done: int = 0
    leases_stolen: int = 0
    leases_split: int = 0
    leases_poisoned: int = 0
    leases_abandoned: int = 0
    cells_evaluated: int = 0
    cells_poisoned: int = 0
    retried_cells: int = 0
    store_retries: int = 0
    wall_s: float = 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"worker {self.worker_id}: {self.leases_done} leases done, "
            f"{self.cells_evaluated} cells evaluated "
            f"({self.wall_s:.2f}s)",
        ]
        if self.leases_stolen or self.leases_split or self.leases_abandoned:
            lines.append(
                f"  reclaims: {self.leases_stolen} leases stolen, "
                f"{self.leases_split} split for culprit isolation, "
                f"{self.leases_abandoned} abandoned (lost to a peer)"
            )
        if self.leases_poisoned or self.cells_poisoned or self.retried_cells:
            lines.append(
                f"  fault tolerance: {self.retried_cells} cells retried, "
                f"{self.cells_poisoned} poisoned "
                f"({self.leases_poisoned} leases), "
                f"{self.store_retries} store-write retries"
            )
        return lines


def work_store(
    store: Union[str, Path, ResultStore],
    worker_id: str,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    poll_s: Optional[float] = None,
    max_leases: Optional[int] = None,
) -> WorkerReport:
    """Drain leases from ``store`` until no outstanding work remains.

    The worker protocol: claim the dearest open lease (else steal the
    dearest expired one), renew deadline + heartbeat between cells,
    evaluate, commit the whole lease through the campaign's
    crash-consistent append path, mark the lease done.  A renew that
    fails means the lease was reclaimed -- the worker abandons it
    without committing (the thief re-runs; duplicate records would be
    byte-identical anyway).  Returns when ``unfinished() == 0`` or
    after ``max_leases`` leases (testing hook).

    ``clock``/``sleep`` are injectable for deterministic tests; real
    workers use wall time, which all workers on a host share.
    """
    st = open_store(store)
    lt = st.leases()
    budget = allowed_deaths(retry)
    poll = poll_s if poll_s is not None else max(0.05, min(1.0, lease_ttl / 10))
    collect = telemetry.enabled()
    t_begin = time.perf_counter()
    done = stolen_n = split_n = poisoned_n = abandoned_n = 0
    cells_n = cells_poisoned = retried = store_retries = 0
    try:
        while max_leases is None or done + poisoned_n < max_leases:
            now = clock()
            lt.beat(worker_id, now, None, os.getpid())
            lease = lt.claim(worker_id, lease_ttl, now)
            was_stolen = False
            if lease is None:
                lease = lt.steal(worker_id, lease_ttl, now)
                was_stolen = lease is not None
            if lease is None:
                if lt.unfinished() == 0:
                    break
                sleep(poll)
                continue
            if was_stolen:
                stolen_n += 1
                if len(lease["cells"]) > 1:
                    # Culprit isolation: re-queue the reclaimed cells
                    # one per lease so a killer cell is cornered alone.
                    lt.split(
                        lease["id"],
                        worker_id,
                        [
                            {
                                "cells": [c],
                                "cost": float(c.get("cost", 0.0)),
                                "deaths": lease["deaths"],
                            }
                            for c in lease["cells"]
                        ],
                    )
                    split_n += 1
                    continue
            if lease["deaths"] >= budget:
                if _poison_lease(
                    st, lt, lease, worker_id, retry=retry, fault_plan=fault_plan
                ):
                    poisoned_n += 1
                    cells_poisoned += len(lease["cells"])
                continue
            outcome = _run_lease(
                st,
                lt,
                lease,
                worker_id,
                stolen=was_stolen,
                lease_ttl=lease_ttl,
                retry=retry,
                cell_timeout=cell_timeout,
                fault_plan=fault_plan,
                clock=clock,
                collect=collect,
            )
            if outcome is None:
                abandoned_n += 1
                continue
            done += 1
            cells_n += outcome["cells"]
            retried += outcome["retried"]
            cells_poisoned += outcome["poisoned"]
            store_retries += outcome["store_retries"]
    finally:
        st.close()
    return WorkerReport(
        worker_id=worker_id,
        leases_done=done,
        leases_stolen=stolen_n,
        leases_split=split_n,
        leases_poisoned=poisoned_n,
        leases_abandoned=abandoned_n,
        cells_evaluated=cells_n,
        cells_poisoned=cells_poisoned,
        retried_cells=retried,
        store_retries=store_retries,
        wall_s=time.perf_counter() - t_begin,
    )


def _run_lease(
    st: ResultStore,
    lt,
    lease: dict,
    worker_id: str,
    *,
    stolen: bool,
    lease_ttl: float,
    retry: Optional[RetryPolicy],
    cell_timeout: Optional[float],
    fault_plan: Optional[FaultPlan],
    clock: Callable[[], float],
    collect: bool,
) -> Optional[dict]:
    """Evaluate one held lease; ``None`` means it was lost mid-run."""
    from repro.scenarios.runner import evaluate_cell, finalise_batch

    scenarios = [scenario_from_dict(c["spec"]) for c in lease["cells"]]
    worker_fn = (
        evaluate_cell
        if fault_plan is None
        else functools.partial(faults.evaluate_cell_under_plan, fault_plan)
    )
    deaths = int(lease["deaths"])
    prior = (
        (f"lease {lease['id']} reclaimed after {deaths} worker death(s)",)
        if deaths
        else ()
    )
    tasks: list[TaskResult] = []
    t0 = time.perf_counter()
    for pos, sc in enumerate(scenarios):
        now = clock()
        if not lt.renew(lease["id"], worker_id, lease_ttl, now):
            return None  # reclaimed: the thief owns these cells now
        lt.beat(worker_id, now, lease["id"], os.getpid())
        tasks.append(
            run_one_with_retry(
                worker_fn,
                pos,
                sc,
                collect,
                retry,
                cell_timeout,
                start_attempt=deaths + 1,
                prior_errors=prior,
            )
        )
    report = finalise_batch(scenarios, tasks, time.perf_counter() - t0)
    store_retries = append_results_with_retry(
        st,
        [outcome_record(o) for o in report.outcomes],
        retry=retry,
        fault_plan=fault_plan,
    )
    poison = (
        [o for o in report.outcomes if o.error is not None]
        if retry is not None and retry.max_attempts > 1
        else []
    )
    if poison:
        st.append_poison(
            {
                "key": cell_key(o.scenario),
                "name": o.scenario.name,
                "attempts": int(o.attempts),
                "error_head": _error_head(o.error),
                "attempt_errors": list(o.attempt_errors),
                "worker": worker_id,
                "lease": int(lease["id"]),
            }
            for o in poison
        )
    _persist_worker_telemetry(
        st, report, lease, worker_id, stolen=stolen, store_retries=store_retries
    )
    if not lt.finish(lease["id"], worker_id, "done"):
        return None  # stolen during the final commit; records are valid
    return {
        "cells": len(scenarios),
        "retried": sum(
            1 for o in report.outcomes if o.attempts > 1 or o.attempt_errors
        ),
        "poisoned": len(poison),
        "store_retries": store_retries,
    }


def _poison_lease(
    st: ResultStore,
    lt,
    lease: dict,
    worker_id: str,
    *,
    retry: Optional[RetryPolicy],
    fault_plan: Optional[FaultPlan],
) -> bool:
    """Route a worker-killing lease's cells to the poison channel.

    Cells get ordinary *error* records (so ``--resume`` keeps retrying
    exactly them, matching single-process poison semantics) plus a
    poison-channel diagnosis; the lease terminates ``poison`` instead
    of cycling through workers forever.
    """
    from repro.scenarios.runner import finalise_batch

    deaths = int(lease["deaths"])
    msg = (
        f"cell killed {deaths} workers (lease {lease['id']}); "
        f"routed to poison channel"
    )
    scenarios = [scenario_from_dict(c["spec"]) for c in lease["cells"]]
    tasks = [
        TaskResult(
            index=i,
            error=msg,
            attempts=deaths,
            attempt_errors=(msg,),
        )
        for i in range(len(scenarios))
    ]
    report = finalise_batch(scenarios, tasks, 0.0)
    append_results_with_retry(
        st,
        [outcome_record(o) for o in report.outcomes],
        retry=retry,
        fault_plan=fault_plan,
    )
    st.append_poison(
        {
            "key": cell_key(sc),
            "name": sc.name,
            "attempts": deaths,
            "error_head": _error_head(msg),
            "attempt_errors": [msg],
            "worker": worker_id,
            "lease": int(lease["id"]),
        }
        for sc in scenarios
    )
    if telemetry.enabled():
        st.append_telemetry(
            [
                {
                    "kind": "lease",
                    "lease": int(lease["id"]),
                    "worker": worker_id,
                    "cells": len(scenarios),
                    "deaths": deaths,
                    "steals": int(lease["steals"]),
                    "disposition": "poison",
                }
            ]
        )
    return lt.finish(lease["id"], worker_id, "poison")


def _persist_worker_telemetry(
    st: ResultStore,
    report,
    lease: dict,
    worker_id: str,
    *,
    stolen: bool,
    store_retries: int,
) -> int:
    """One ``kind="lease"`` ledger record per lease plus the usual
    per-cell telemetry and attempt-ledger records (see
    :func:`repro.runtime.campaign._persist_telemetry`); the report's
    "Lease ledger" section renders these."""
    if not telemetry.enabled():
        return 0
    records: list[dict] = []
    for o in report.outcomes:
        if o.attempts > 1 or o.attempt_errors:
            records.append(
                {
                    "kind": "attempts",
                    "key": cell_key(o.scenario),
                    "name": o.scenario.name,
                    "attempts": int(o.attempts),
                    "faults": list(o.attempt_errors),
                    "disposition": (
                        "poison" if o.error is not None else "recovered"
                    ),
                    "worker": worker_id,
                    "lease": int(lease["id"]),
                }
            )
        if o.telemetry is not None:
            records.append(
                telemetry.cell_record(
                    o.telemetry,
                    key=cell_key(o.scenario),
                    eff_backend=o.eff_backend,
                    wall_time=float(o.wall_time),
                    primed=bool(o.primed),
                )
            )
    records.append(
        {
            "kind": "lease",
            "lease": int(lease["id"]),
            "worker": worker_id,
            "cells": len(lease["cells"]),
            "stolen": bool(stolen),
            "deaths": int(lease["deaths"]),
            "steals": int(lease["steals"]),
            "store_retries": int(store_retries),
            "disposition": "done",
            "wall_s": float(report.elapsed),
        }
    )
    st.append_telemetry(records)
    return len(records)


# ----------------------------------------------------------------------
# The coordinator half (``scenarios run --coordinator``)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoordinatorReport:
    """One coordinated campaign: lease plan, reclaim ledger, summary."""

    requested: int
    skipped: int
    planned_leases: int
    workers: int
    lease_ttl: float
    lease_counts: dict
    stolen_leases: int
    worker_deaths: int
    superseded_leases: int
    respawns: int
    hung_killed: int
    recovery_rounds: int
    converged: bool
    summary: dict
    store_root: str
    store_kind: str
    wall_s: float

    @property
    def clean(self) -> bool:
        """Converged with no unsound/error/budget verdict in the store."""
        return (
            self.converged
            and int(self.summary.get("unsound", 0)) == 0
            and int(self.summary.get("errors", 0)) == 0
            and int(self.summary.get("budget_violations", 0)) == 0
        )

    def summary_lines(self) -> list[str]:
        counts = self.lease_counts
        lines = [
            f"cells requested: {self.requested} "
            f"({self.skipped} already in store)",
            f"leases: {self.planned_leases} planned across "
            f"{self.workers} workers (ttl {self.lease_ttl:g}s)",
            f"lease outcomes: {counts.get('done', 0)} done, "
            f"{counts.get('split', 0)} split, "
            f"{counts.get('poison', 0)} poison",
        ]
        if (
            self.stolen_leases
            or self.worker_deaths
            or self.respawns
            or self.hung_killed
            or self.superseded_leases
        ):
            lines.append(
                f"reclaims: {self.stolen_leases} leases stolen "
                f"({self.worker_deaths} worker deaths), "
                f"{self.respawns} workers respawned, "
                f"{self.hung_killed} hung workers killed, "
                f"{self.superseded_leases} stale leases superseded"
            )
        if self.recovery_rounds:
            lines.append(
                f"recovery: {self.recovery_rounds} re-lease round(s) "
                f"for records lost in flight"
            )
        if not self.converged:
            lines.append(
                "NOT CONVERGED: cells remain without records "
                "(respawn/recovery budget exhausted)"
            )
        s = self.summary
        lines.append(
            f"store: {self.store_root} [{self.store_kind}] "
            f"({s.get('cells', 0)} records; {s.get('unsound', 0)} unsound, "
            f"{s.get('errors', 0)} errors, "
            f"{s.get('budget_violations', 0)} over budget) "
            f"in {self.wall_s:.2f}s"
        )
        return lines


def _spawn_worker(
    store_url: str,
    worker_id: str,
    *,
    lease_ttl: float,
    retry: Optional[RetryPolicy],
    cell_timeout: Optional[float],
    fault_plan: Optional[FaultPlan],
    log_dir: Path,
) -> subprocess.Popen:
    """Launch one ``scenarios work`` subprocess against the store."""
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "scenarios",
        "work",
        store_url,
        "--worker-id",
        worker_id,
        "--lease-ttl",
        str(lease_ttl),
    ]
    if retry is not None and retry.max_attempts > 1:
        cmd += ["--retries", str(retry.max_attempts - 1)]
        cmd += ["--retry-seed", str(retry.seed)]
    if cell_timeout:
        cmd += ["--cell-timeout", str(cell_timeout)]
    if not telemetry.enabled():
        cmd += ["--no-telemetry"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    if fault_plan is not None:
        # The full plan (not the CLI's SEED:RATE shorthand): custom
        # kinds and attempt ceilings must survive the process hop.
        env["REPRO_FAULT_PLAN"] = json.dumps(faults.plan_to_dict(fault_plan))
    log = open(log_dir / f"worker-{worker_id}.log", "ab")
    try:
        return subprocess.Popen(cmd, env=env, stdout=log, stderr=log)
    finally:
        log.close()


def run_coordinator(
    scenarios: Sequence[Scenario],
    *,
    store: Union[str, Path, ResultStore],
    workers: int = 2,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    cost_model: Optional[CellCostModel] = None,
    max_cells: int = 16,
    max_respawns: Optional[int] = None,
    recovery_rounds: int = RECOVERY_ROUNDS,
) -> CoordinatorReport:
    """Run ``scenarios`` to completion with ``workers`` lease workers.

    Plans leases over the cells missing from the store (a restarted
    coordinator therefore resumes for free: completed cells are never
    re-leased, stale leases are superseded with their death history
    carried forward), spawns ``workers`` local ``scenarios work``
    subprocesses, supervises them -- respawning dead ones and killing
    hung ones under a bounded budget -- and finally heals the store
    and writes ``summary.json``.  The summary is byte-identical to an
    undisturbed serial run over the same matrix: leases change *who*
    runs a cell, never its seed or record.

    ``fault_plan`` is shipped to the workers verbatim (they arm real
    ``kill`` faults); the coordinator process itself never injects.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    t_begin = time.perf_counter()
    st = open_store(store)
    lt = st.leases()
    scenarios = list(scenarios)

    # Restart path: whatever a dead coordinator left behind is
    # superseded; each cell's death count survives into the new plan.
    stale = lt.supersede_incomplete()
    carried: dict[str, int] = {}
    for row in stale:
        for c in row["cells"]:
            key = c.get("key")
            if key:
                carried[key] = max(carried.get(key, 0), int(row["deaths"]))

    completed = st.completed_keys()
    todo = [sc for sc in scenarios if cell_key(sc) not in completed]
    planned = plan_campaign_leases(
        st,
        todo,
        workers,
        cost_model=cost_model,
        max_cells=max_cells,
        deaths=carried or None,
    )

    store_url = f"{st.kind}:{st.root}"
    log_dir = Path(st.root)
    budget = max_respawns if max_respawns is not None else max(4, 2 * workers)
    hung_after = max(2.0 * lease_ttl, 5.0)
    poll = max(0.05, min(0.5, lease_ttl / 10))
    tag = os.getpid()

    procs: dict[str, subprocess.Popen] = {}
    spawned_at: dict[str, float] = {}
    respawns = hung_killed = worker_seq = 0
    converged = True

    def _spawn() -> None:
        nonlocal worker_seq
        worker_seq += 1
        wid = f"w{worker_seq}-{tag}"
        procs[wid] = _spawn_worker(
            store_url,
            wid,
            lease_ttl=lease_ttl,
            retry=retry,
            cell_timeout=cell_timeout,
            fault_plan=fault_plan,
            log_dir=log_dir,
        )
        spawned_at[wid] = time.time()

    if planned:
        for _ in range(workers):
            _spawn()
        while True:
            for wid, proc in list(procs.items()):
                if proc.poll() is not None:
                    procs.pop(wid)
            if lt.unfinished() == 0:
                break
            now = time.time()
            beats = {hb["worker"]: hb for hb in lt.heartbeat_rows()}
            for wid, proc in list(procs.items()):
                hb = beats.get(wid)
                if (
                    hb is not None
                    and now - hb["beat"] > hung_after
                    and now - spawned_at[wid] > hung_after
                ):
                    # Alive but silent far beyond the TTL: a wedged
                    # worker.  Its lease is already fair game; reap it.
                    proc.kill()
                    proc.wait()
                    procs.pop(wid)
                    hung_killed += 1
            while len(procs) < workers and respawns < budget:
                _spawn()
                respawns += 1
            if not procs:
                converged = False  # respawn budget exhausted mid-campaign
                break
            time.sleep(poll)
        for proc in procs.values():
            try:
                proc.wait(timeout=lease_ttl + 10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        procs.clear()

    # Convergence: every planned cell must have landed a record (a
    # concurrent torn JSONL append can lose one); re-lease stragglers
    # to a fresh worker a bounded number of times.
    rounds = 0
    if converged:
        for _ in range(max(0, recovery_rounds)):
            records = st.load()  # heal pass: quarantine torn residue
            missing = [sc for sc in todo if cell_key(sc) not in records]
            if not missing:
                break
            rounds += 1
            plan_campaign_leases(
                st,
                missing,
                1,
                cost_model=cost_model,
                max_cells=max_cells,
                deaths=carried or None,
            )
            _spawn()
            for wid, proc in list(procs.items()):
                proc.wait()
                procs.pop(wid)
        else:
            records = st.load()
            converged = not any(
                cell_key(sc) not in records for sc in todo
            )
    else:
        st.load()

    counts = lt.counts()
    rows = lt.rows()
    stolen = sum(int(r["steals"]) for r in rows)
    deaths_total = sum(int(r["deaths"]) for r in rows if int(r["steals"]))
    if telemetry.enabled():
        st.append_telemetry(
            [
                {
                    "kind": "leases",
                    "planned": len(planned),
                    "workers": int(workers),
                    "lease_ttl": float(lease_ttl),
                    "done": counts.get("done", 0),
                    "split": counts.get("split", 0),
                    "poison": counts.get("poison", 0),
                    "superseded": len(stale),
                    "stolen": stolen,
                    "worker_deaths": deaths_total,
                    "respawns": respawns,
                    "hung_killed": hung_killed,
                    "recovery_rounds": rounds,
                    "converged": bool(converged),
                    "source": "coordinator",
                }
            ]
        )
    summary = st.write_summary()
    report = CoordinatorReport(
        requested=len(scenarios),
        skipped=len(scenarios) - len(todo),
        planned_leases=len(planned),
        workers=workers,
        lease_ttl=lease_ttl,
        lease_counts=counts,
        stolen_leases=stolen,
        worker_deaths=deaths_total,
        superseded_leases=len(stale),
        respawns=respawns,
        hung_killed=hung_killed,
        recovery_rounds=rounds,
        converged=converged,
        summary=dict(summary),
        store_root=str(st.root),
        store_kind=st.kind,
        wall_s=time.perf_counter() - t_begin,
    )
    st.close()
    return report
