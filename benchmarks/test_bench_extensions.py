"""Benches for the implemented future-work extensions.

* Bound validation grid: every (mix, mode, rate) cell must be sound
  (measured <= bound) with meaningful tightness.
* Priority-extended regulation: delay vs weight curve.
* Churn: stability of DSCT-style trees under membership turnover.
* Whole-tree vs critical-path accounting at a medium scale.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.calculus.envelope import ArrivalEnvelope
from repro.core.priority import (
    build_priority_stagger_plan,
    fluid_priority_vacation_regulator,
    priority_delay_bound,
)
from repro.experiments.report import render_table
from repro.experiments.validation import validate_bounds
from repro.overlay.dynamics import ChurnSimulator
from repro.overlay.groups import MultiGroupNetwork
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_chain
from repro.simulation.tree_sim import simulate_multicast_tree
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_rtt_matrix
from repro.utils.piecewise import PiecewiseLinearCurve as PLC


def test_bound_validation_grid(benchmark, artifact_report):
    cells = run_once(
        benchmark, validate_bounds,
        utilizations=(0.5, 0.7, 0.9), horizon=10.0, dt=1e-3,
    )
    rows = [
        [c.mix_name, c.mode, c.utilization, c.measured, c.bound, c.tightness]
        for c in cells
    ]
    artifact_report.append(
        render_table(
            ["mix", "mode", "u", "measured [s]", "bound [s]", "tightness"],
            rows, title="== Bound validation (measured / analytic) ==",
        )
    )
    assert all(c.sound for c in cells)
    assert max(c.tightness for c in cells) > 0.2


def test_priority_extension(benchmark, artifact_report):
    rho = 0.3
    trace = VBRVideoSource(rho).generate(12.0, rng=3).fragment(0.002)
    sigma = max(trace.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * 3
    dt = 1e-3
    total = 40.0
    n = int(total / dt)
    t = dt * np.arange(n + 1)
    arr = np.concatenate(([0.0], np.cumsum(trace.binned_arrivals(dt, total))))

    def sweep():
        rows = []
        for w in (1, 2, 4):
            plan = build_priority_stagger_plan(envs, [w, 1, 1])
            out = fluid_priority_vacation_regulator(arr, t, plan, 0)
            a = PLC(t, arr)
            d = PLC(t, np.minimum(out, arr[-1]))
            measured = a.max_horizontal_deviation(d)
            rows.append([w, measured, priority_delay_bound(plan, 0)])
        return rows

    rows = run_once(benchmark, sweep)
    artifact_report.append(
        render_table(
            ["weight w", "measured delay [s]", "schedule bound [s]"],
            rows, title="== Priority extension: delay vs weight ==",
        )
    )
    measured = [r[1] for r in rows]
    assert measured[0] > measured[-1]           # weight helps
    for w, m, b in rows:
        assert m <= b * 1.05 + 5e-3             # and stays bounded


def test_churn_stability(benchmark, artifact_report):
    bb = fig5_backbone()
    net = attach_hosts(bb, 300, rng=6)
    rtt = host_rtt_matrix(net)
    mgn = MultiGroupNetwork.fully_joined(net, 1, rng=6)
    tree = mgn.build_tree(0, "dsct", rng=6)

    def churn_run():
        members = sorted(tree.members())
        keep = set(members[:200])
        base = tree
        # Shrink to 200 members to leave a standby pool.
        from repro.overlay.dynamics import leave_member
        for m in members[200:]:
            if m == base.root:
                continue
            base, _ = leave_member(base, m)
        standby = sorted(set(range(300)) - base.members())
        sim = ChurnSimulator(base, rtt, standby, max_fanout=8)
        return sim.run(400, rng=42)

    stats = run_once(benchmark, churn_run)
    artifact_report.append(
        render_table(
            ["joins", "leaves", "re-parents", "stability", "final height"],
            [[stats.joins, stats.leaves, stats.reparent_operations,
              round(stats.stability, 3), stats.height_trace[-1]]],
            title="== Churn: 400 events over a 200-member DSCT tree ==",
        )
    )
    assert stats.joins + stats.leaves == 400
    # Local repair: well under one re-parent per event on average.
    assert stats.stability < 2.0


def test_whole_tree_vs_critical_path(benchmark, artifact_report):
    """The reduction's accounting dominates ground truth (medium scale)."""
    bb = fig5_backbone()
    net = attach_hosts(bb, 48, rng=13)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=13)
    trees = mgn.build_all_trees("dsct", rng=13)
    u = 0.9
    rho = u / 3
    stream = VBRVideoSource(rho).generate(6.0, rng=13).fragment(0.002)
    envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * 3
    traces = [stream] * 3

    def compare():
        whole = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency,
            mode="sigma-rho", discipline="fifo",
        )
        path = trees[0].critical_path()
        hops = len(path) - 1
        prop = [0.0] + [
            float(mgn.latency[path[i - 1], path[i]]) for i in range(1, hops)
        ]
        chain = simulate_fluid_chain(
            traces[0], [[traces[1], traces[2]]] * hops, envs,
            mode="sigma-rho", discipline="adversarial",
            propagation=prop, dt=1e-3,
        )
        estimate = chain.worst_case_delay + float(mgn.latency[path[-2], path[-1]])
        return whole.worst_case_delay, estimate, whole.events

    whole_wdb, estimate, events = run_once(benchmark, compare)
    artifact_report.append(
        render_table(
            ["whole-tree WDB [s]", "critical-path estimate [s]", "DES events"],
            [[whole_wdb, estimate, events]],
            title="== Whole-tree DES vs critical-path reduction (48 hosts) ==",
        )
    )
    assert estimate >= whole_wdb * 0.95
