"""Network-calculus substrate (Cruz's (sigma, rho) calculus).

The paper analyses worst-case delays with the deterministic network
calculus of Cruz ("A Calculus for Network Delay", parts I & II), which
it cites as [15-16].  This subpackage implements the pieces of that
calculus the paper relies on:

* :class:`~repro.calculus.envelope.ArrivalEnvelope` -- the
  ``R ~ (sigma, rho)`` burstiness constraint, envelope arithmetic and
  empirical envelope extraction from traces.
* :mod:`repro.calculus.service` -- latency-rate service curves and the
  classic delay/backlog bounds (horizontal/vertical deviation).
* :mod:`repro.calculus.mux` -- worst-case delay bounds for the
  work-conserving *general multiplexer* fed by regulated flows
  (Remark 1 of the paper, i.e. equation (13) of Cruz part I).
"""

from repro.calculus.convolution import (
    backlog_bound_curves,
    delay_bound_curves,
    min_plus_convolve,
    min_plus_deconvolve,
)
from repro.calculus.envelope import ArrivalEnvelope, empirical_envelope
from repro.calculus.mux import (
    mux_backlog_bound,
    mux_delay_bound_heterogeneous,
    mux_delay_bound_homogeneous,
    mux_is_stable,
)
from repro.calculus.service import (
    LatencyRateServer,
    backlog_bound,
    delay_bound,
    output_envelope,
)

__all__ = [
    "min_plus_convolve",
    "min_plus_deconvolve",
    "delay_bound_curves",
    "backlog_bound_curves",
    "ArrivalEnvelope",
    "empirical_envelope",
    "LatencyRateServer",
    "backlog_bound",
    "delay_bound",
    "output_envelope",
    "mux_backlog_bound",
    "mux_delay_bound_heterogeneous",
    "mux_delay_bound_homogeneous",
    "mux_is_stable",
]
