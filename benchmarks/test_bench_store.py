"""Result-store backend benchmarks (the PR-4 trajectory numbers).

Ingest and load throughput of the two store backends on a
1024-cell campaign's worth of records -- the workload the sharded
runtime actually generates (shard processes committing whole batches,
resume passes re-loading the full store).  Emits ``BENCH_pr4.json`` at
the repo root.

Floors are deliberately loose (CI containers jitter), but they pin the
property the sharding design relies on: batched ingest of a
thousand-cell campaign is a sub-second affair on either backend, so
the store is never the campaign bottleneck.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.runtime import (
    JsonlResultStore,
    SqliteResultStore,
    cell_key,
    spec_fingerprint,
)
from repro.scenarios import generate_scenarios

#: Records per second both backends must sustain on batched ingest.
INGEST_FLOOR = 2_000.0

N_CELLS = 1024


@pytest.fixture(scope="module")
def campaign_records():
    """1024 realistic records (full spec payloads, no evaluation)."""
    scenarios = generate_scenarios(N_CELLS, seed=2006, max_k=9, max_hops=6)
    records = []
    for i, sc in enumerate(scenarios):
        records.append(
            {
                "key": cell_key(sc),
                "fingerprint": spec_fingerprint(sc),
                "name": sc.name,
                "sound": True,
                "error": None,
                "measured": 0.01 * (i + 1),
                "bound": 0.02 * (i + 1),
                "baseline_bound": 0.03 * (i + 1),
                "eps": 1e-3,
                "tightness": 0.5,
                "eff_mode": sc.mode,
                "eff_backend": sc.backend,
                "hops": sc.hops,
                "propagation_total": 0.0,
                "events": 0,
                "cancelled_events": 0,
                "height_ok": True,
                "wall_time": 0.004,
                "perf_budget": 0.0,
                "budget_ok": True,
                "tags": list(sc.tags),
                "backend": sc.backend,
                "k": sc.k,
                "tree_members": sc.tree_members,
                "horizon": sc.horizon,
                "dt": sc.dt,
                "spec": dataclasses.asdict(sc),
            }
        )
    return records


def _measure(store, records):
    """(ingest seconds, load seconds) for one batched fill + full load."""
    t0 = time.perf_counter()
    store.append_many(records)
    ingest = time.perf_counter() - t0
    t0 = time.perf_counter()
    loaded = store.load()
    load = time.perf_counter() - t0
    assert len(loaded) == len(records)
    return ingest, load


def test_store_ingest_throughput(bench_pr4, artifact_report,
                                 campaign_records, tmp_path):
    """JSONL vs SQLite on the same 1024-record campaign batch."""
    jsonl = JsonlResultStore(tmp_path / "jsonl")
    sqlite = SqliteResultStore(tmp_path / "sqlite")
    j_ingest, j_load = _measure(jsonl, campaign_records)
    s_ingest, s_load = _measure(sqlite, campaign_records)
    # The two backends loaded the identical records.
    assert sqlite.load() == jsonl.load()
    rows = {
        "jsonl": (j_ingest, j_load),
        "sqlite": (s_ingest, s_load),
    }
    bench_pr4["store_ingest_1024"] = {
        "cells": N_CELLS,
        **{
            f"{kind}_{phase}_seconds": round(sec, 5)
            for kind, (ing, ld) in rows.items()
            for phase, sec in (("ingest", ing), ("load", ld))
        },
        **{
            f"{kind}_ingest_records_per_sec": round(N_CELLS / ing)
            for kind, (ing, _) in rows.items()
        },
    }
    artifact_report.append(
        "== Store ingest: 1024-cell campaign batch ==\n"
        + "\n".join(
            f"{kind}: ingest {ing * 1e3:.1f} ms "
            f"({N_CELLS / ing / 1e3:.0f}k rec/s), "
            f"load {ld * 1e3:.1f} ms"
            for kind, (ing, ld) in rows.items()
        )
    )
    for kind, (ing, _) in rows.items():
        assert N_CELLS / ing >= INGEST_FLOOR, (
            f"{kind} ingest only {N_CELLS / ing:.0f} records/s"
        )


def test_sqlite_per_record_commit_cost(bench_pr4, artifact_report,
                                       campaign_records, tmp_path):
    """Worst-case write pattern: one transaction per record (what a
    crash-paranoid writer would do).  Recorded so the batched-commit
    advantage stays visible in the trajectory; only a very loose floor
    is asserted (fsync-bound)."""
    store = SqliteResultStore(tmp_path / "single")
    subset = campaign_records[:64]
    t0 = time.perf_counter()
    for rec in subset:
        store.append(rec)
    elapsed = time.perf_counter() - t0
    per_rec = len(subset) / elapsed
    bench_pr4["sqlite_per_record_commits"] = {
        "records": len(subset),
        "seconds": round(elapsed, 5),
        "records_per_sec": round(per_rec),
    }
    artifact_report.append(
        "== SQLite per-record commits (worst case) ==\n"
        f"{len(subset)} records: {elapsed * 1e3:.1f} ms "
        f"({per_rec:.0f} rec/s)"
    )
    assert per_rec >= 20.0, f"per-record commits only {per_rec:.0f}/s"
