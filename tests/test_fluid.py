"""Fluid kernels: closed-form checks and DES cross-validation."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_homogeneous,
    theorem2_wdb_homogeneous,
)
from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import (
    fluid_mux,
    fluid_next_empty,
    fluid_on_time,
    fluid_token_bucket,
    fluid_vacation_regulator,
    fluid_work_conserving,
    simulate_fluid_host,
)
from repro.simulation.host_sim import simulate_regulated_host


def grid(horizon, dt=1e-3):
    n = int(horizon / dt)
    return dt * np.arange(n + 1)


class TestWorkConserving:
    def test_burst_drains_at_capacity(self):
        t = grid(2.0)
        arr = np.where(t > 0, 0.5, 0.0)  # burst 0.5 at t=0+
        dep = fluid_work_conserving(arr, 1.0 * t)
        # Fully served by t = 0.5.
        idx = np.searchsorted(t, 0.75)
        assert dep[idx] == pytest.approx(0.5, abs=1e-6)

    def test_departures_never_exceed_arrivals(self):
        t = grid(1.0)
        rng = np.random.default_rng(0)
        arr = np.cumsum(rng.random(t.shape)) * 1e-3
        dep = fluid_work_conserving(arr, 2.0 * t)
        assert np.all(dep <= arr + 1e-12)

    def test_departures_monotone(self):
        t = grid(1.0)
        rng = np.random.default_rng(1)
        arr = np.cumsum(rng.random(t.shape)) * 1e-3
        dep = fluid_work_conserving(arr, 0.5 * t)
        assert np.all(np.diff(dep) >= -1e-12)


class TestTokenBucket:
    def test_conformant_passes_unchanged(self):
        t = grid(2.0)
        arr = 0.3 * t  # pure rate below rho
        out = fluid_token_bucket(arr, t, sigma=0.1, rho=0.5)
        assert np.allclose(out, arr)

    def test_output_conforms(self):
        t = grid(5.0)
        rng = np.random.default_rng(2)
        arr = np.cumsum(rng.random(t.shape) * rng.integers(0, 2, t.shape)) * 2e-3
        out = fluid_token_bucket(arr, t, sigma=0.05, rho=0.4)
        g = out - 0.4 * t
        sigma_emp = (g - np.minimum.accumulate(g)).max()
        assert sigma_emp <= 0.05 + 1e-9

    def test_burst_released_gradually(self):
        t = grid(2.0)
        arr = np.where(t > 0, 1.0, 0.0)  # 1.0 burst vs sigma=0.2
        out = fluid_token_bucket(arr, t, sigma=0.2, rho=0.5)
        # sigma passes at once, the rest at rho: done at (1-0.2)/0.5 = 1.6.
        assert out[np.searchsorted(t, 0.5)] == pytest.approx(
            0.2 + 0.5 * 0.5, abs=1e-2
        )
        assert out[-1] == pytest.approx(1.0, abs=1e-6)


class TestOnTime:
    def test_closed_form_matches_direct_sum(self):
        t = grid(3.0, dt=1e-3)
        w, p, off = 0.2, 0.7, 0.15
        on = fluid_on_time(t, w, p, off)
        # Direct computation at a few probes.
        for probe in (0.0, 0.15, 0.3, 0.86, 1.6, 2.95):
            direct = 0.0
            m = 0
            while off + m * p < probe:
                direct += min(probe - (off + m * p), w)
                m += 1
            idx = np.searchsorted(t, probe)
            assert on[min(idx, len(on) - 1)] == pytest.approx(direct, abs=2e-3)

    def test_slope_is_duty_cycle(self):
        t = grid(100.0, dt=1e-2)
        on = fluid_on_time(t, 0.25, 1.0)
        assert on[-1] / t[-1] == pytest.approx(0.25, rel=1e-2)

    def test_rejects_w_above_period(self):
        with pytest.raises(ValueError):
            fluid_on_time(grid(1.0), 2.0, 1.0)


class TestVacationRegulator:
    def test_sustains_rho(self):
        reg = SigmaRhoLambdaRegulator(0.05, 0.25)
        t = grid(40.0)
        arr = np.minimum(0.5 * t, 8.0)  # overload then stop
        out = fluid_vacation_regulator(arr, t, reg)
        # Long-run throughput while backlogged ~ rho.
        mid = np.searchsorted(t, 8.0 / 0.25 * 0.9)
        assert out[mid] / t[mid] == pytest.approx(0.25, rel=0.05)

    def test_nothing_leaves_during_vacation(self):
        reg = SigmaRhoLambdaRegulator(0.05, 0.25)
        dt = 1e-4
        t = grid(2.0, dt=dt)
        arr = np.where(t > 0, 1.0, 0.0)
        out = fluid_vacation_regulator(arr, t, reg)
        w, p = reg.working_period, reg.regulator_period
        # Bins entirely inside a vacation (both endpoints clear of the
        # window boundary by > dt, since boundaries do not align with
        # the grid) must show zero output.
        lo, hi = t[:-1] % p, t[1:] % p
        interior = (lo > w + dt) & (hi < p - dt) & (hi > lo)
        d_out = np.diff(out)
        assert np.all(d_out[interior] <= 1e-12)


class TestNextEmpty:
    def test_simple_busy_period(self):
        t = grid(2.0)
        arr = np.where(t > 0, 0.5, 0.0)
        ne = fluid_next_empty(t, arr, 1.0)
        # At t=0.1 the queue empties at 0.5.
        assert ne[np.searchsorted(t, 0.1)] == pytest.approx(0.5, abs=2e-3)
        # After the busy period, "next empty" is now.
        idx = np.searchsorted(t, 1.0)
        assert ne[idx] == pytest.approx(1.0, abs=2e-3)


class TestFluidMux:
    def test_fifo_shares_sum_to_aggregate(self):
        t = grid(2.0)
        rng = np.random.default_rng(3)
        arrs = [np.cumsum(rng.random(t.shape)) * 1e-3 for _ in range(3)]
        deps = fluid_mux(arrs, t, 1.0, discipline="fifo")
        agg_dep = fluid_work_conserving(np.sum(arrs, axis=0), t)
        assert np.allclose(np.sum(deps, axis=0), agg_dep, atol=1e-6)

    def test_priority_conserves_each_flow(self):
        t = grid(3.0)
        arrs = [np.minimum(0.3 * t, 0.5) for _ in range(3)]
        deps = fluid_mux(arrs, t, 1.0, discipline="priority", tagged=1)
        for a, d in zip(arrs, deps):
            assert d[-1] == pytest.approx(a[-1], rel=1e-6)
            assert np.all(d <= a + 1e-9)

    def test_unknown_discipline(self):
        t = grid(1.0)
        with pytest.raises(ValueError):
            fluid_mux([0.1 * t], t, 1.0, discipline="magic")


class TestHostLevel:
    @pytest.fixture(scope="class")
    def scenario(self):
        k, u = 3, 0.8
        rho = u / k
        src = VBRVideoSource(rho, scene_strength=0.15, scene_persistence=0.9)
        trace = src.generate(8.0, rng=42).fragment(0.002)
        traces = [trace] * k
        sigma = max(trace.empirical_sigma(rho), 1e-6)
        envs = [ArrivalEnvelope(sigma, rho)] * k
        return traces, envs, sigma, rho, k

    def test_measured_never_exceeds_cruz_bound(self, scenario):
        traces, envs, sigma, rho, k = scenario
        res = simulate_fluid_host(
            traces, envs, mode="sigma-rho", discipline="adversarial", dt=1e-3
        )
        bound = remark1_wdb_homogeneous(k, sigma, rho)
        assert res.worst_case_delay <= bound * (1 + 1e-6) + 2 * res.dt

    def test_lambda_mode_obeys_theorem2(self, scenario):
        traces, envs, sigma, rho, k = scenario
        res = simulate_fluid_host(
            traces, envs, mode="sigma-rho-lambda", discipline="adversarial", dt=1e-3
        )
        bound = theorem2_wdb_homogeneous(k, sigma, rho)
        assert res.worst_case_delay <= bound * (1 + 1e-6) + 2 * res.dt

    def test_des_and_fluid_agree(self, scenario):
        """Cross-validation of the two backends on identical traces."""
        traces, envs, *_ = scenario
        for mode in ("sigma-rho", "sigma-rho-lambda"):
            f = simulate_fluid_host(
                traces, envs, mode=mode, discipline="adversarial", dt=5e-4
            )
            d = simulate_regulated_host(
                traces, envs, mode=mode, discipline="adversarial"
            )
            assert f.worst_case_delay == pytest.approx(
                d.worst_case_delay, rel=0.35, abs=0.05
            ), mode

    def test_adaptive_mode_resolves(self, scenario):
        traces, envs, *_ = scenario
        res = simulate_fluid_host(traces, envs, mode="adaptive", dt=2e-3)
        assert res.mode in ("sigma-rho", "sigma-rho-lambda")

    def test_fifo_discipline_no_slower_than_adversarial(self, scenario):
        traces, envs, *_ = scenario
        fifo = simulate_fluid_host(
            traces, envs, mode="sigma-rho", discipline="fifo", dt=1e-3
        )
        adv = simulate_fluid_host(
            traces, envs, mode="sigma-rho", discipline="adversarial", dt=1e-3
        )
        assert fifo.worst_case_delay <= adv.worst_case_delay + 1e-6
