"""Single regulated end host simulation (the paper's Simulation I).

Figure 3 of the paper: a source feeds K real-time flows through one
(sigma, rho, lambda)/(sigma, rho)-regulated end host towards a sink;
Figure 4 plots the measured worst-case delay of both regulator families
against the flows' average input rate.  :func:`simulate_regulated_host`
is that topology as a function: traces in, per-flow worst-case delays
out.

Control modes
-------------
``"sigma-rho"``
    per-flow token buckets feeding the MUX (the baseline).
``"sigma-rho-lambda"``
    the adaptive controller's staggered vacation regulators.
``"none"``
    no regulation (used by the capacity-aware scheme, where the tree --
    not a regulator -- limits load).
``"adaptive"``
    let :class:`~repro.core.adaptive.AdaptiveController` pick one of the
    first two from the measured average rate (the full algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode
from repro.simulation.batched import (
    BatchMuxServer,
    BatchVacationComponent,
    primed_vacation_host,
)
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace
from repro.simulation.measures import DelayRecorder, DelayStats
from repro.simulation.mux_sim import MuxServer
from repro.simulation.packet import Packet
from repro.simulation.regulator_sim import TokenBucketComponent, VacationComponent
from repro.utils.validation import check_positive

__all__ = ["HostResult", "simulate_regulated_host", "build_regulated_host", "inject_trace"]

#: Control-mode strings accepted by the builders.
MODES = ("sigma-rho", "sigma-rho-lambda", "none", "adaptive")

#: DES engines: ``"batched"`` (window-batched components, the default)
#: or ``"legacy"`` (the per-packet event chain, kept for the
#: equivalence suite and addressable as ``backend="des_legacy"``).
ENGINES = ("batched", "legacy")


@dataclass(frozen=True)
class HostResult:
    """Outcome of a single-host simulation."""

    mode: str
    worst_case_delay: float
    per_flow: tuple[DelayStats, ...]
    events: int
    #: Cancelled events popped off the heap (regulator wakeup churn);
    #: batch harnesses report it next to ``events`` so event-rate
    #: figures account for the lazy-cancellation residue.
    cancelled_events: int = 0

    def worst_flow(self) -> int:
        """Index of the flow with the largest worst-case delay."""
        return max(range(len(self.per_flow)), key=lambda i: self.per_flow[i].worst)


def inject_trace(
    sim: Simulator, trace: PacketTrace, flow_id: int, sink
) -> None:
    """Schedule every packet of ``trace`` for delivery into ``sink``.

    Uses the engine's batch-schedule API: one validation pass for the
    whole train, and time-sorted traces load the heap without per-event
    sift-ups.
    """
    sim.schedule_batch(
        trace.times,
        sink.receive,
        (
            (Packet(flow_id=flow_id, size=float(s), t_emit=float(t)),)
            for t, s in zip(trace.times, trace.sizes)
        ),
    )


def build_regulated_host(
    sim: Simulator,
    envelopes: Sequence[ArrivalEnvelope],
    sink,
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    engine: str = "batched",
):
    """Assemble regulators + MUX for one end host; return per-flow entry points.

    Parameters
    ----------
    sim, envelopes, sink:
        Simulator, per-flow (sigma, rho) envelopes, downstream sink
        (single component or ``flow_id -> component`` mapping).
    mode:
        One of :data:`MODES`.
    capacity:
        MUX service rate ``C``.
    discipline:
        MUX discipline; ``"priority"`` with flow index as priority
        realises the adversarial *general MUX* (the last flow is the
        tagged worst-case flow), ``"fifo"`` the benign one.
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset (used by multi-hop chains to de-synchronise consecutive
        hosts' window schedules).
    engine:
        One of :data:`ENGINES`: ``"batched"`` commits whole busy trains
        per event (window-batched vacation service, commit-on-receive
        MUX drains); ``"legacy"`` is the per-packet event chain.  The
        equivalence contract (``tests/test_des_batched_equivalence``):
        bit-identical delays for FIFO/priority disciplines; under the
        adversarial discipline the batched engine releases held batches
        deterministically at zero-backlog instants (the fluid backend's
        semantics), so its delays are pointwise <= the legacy engine's
        (whose release at exact ties was an event-order race).
        ``"priority"`` MUXes always use the legacy server (a strict
        priority order cannot be committed ahead of arrivals).

    Returns
    -------
    (entries, mux):
        ``entries`` -- one entry component per flow (regulator, or the
        MUX itself in mode ``"none"``); ``mux`` -- the MUX server.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    check_positive(capacity, "capacity")
    controller = AdaptiveController(envelopes, capacity)
    if mode == "adaptive":
        mode = (
            "sigma-rho"
            if controller.select_mode() is ControlMode.SIGMA_RHO
            else "sigma-rho-lambda"
        )
    priorities = {i: i for i in range(len(envelopes))}
    if engine == "batched" and discipline in ("fifo", "adversarial"):
        mux = BatchMuxServer(
            sim, capacity, sink, discipline=discipline, priorities=priorities
        )
    else:
        mux = MuxServer(
            sim, capacity, sink, discipline=discipline, priorities=priorities
        )
    if mode == "none":
        entries = [mux] * len(envelopes)
    elif mode == "sigma-rho":
        entries = [
            TokenBucketComponent(sim, e.sigma, e.rho / capacity, mux)
            for e in envelopes
        ]
    else:  # sigma-rho-lambda
        vacation_cls = (
            BatchVacationComponent if engine == "batched" else VacationComponent
        )
        plan = controller.build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
        entries = [
            vacation_cls(
                sim,
                reg,
                mux,
                offset=base + off,
                out_rate=capacity,
            )
            for reg, off in zip(plan.regulators, plan.offsets)
        ]
    return entries, mux


def simulate_regulated_host(
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    horizon: Optional[float] = None,
    drain: bool = True,
    engine: str = "batched",
) -> HostResult:
    """Run the Fig.-3 topology: K flows through one regulated host.

    Parameters
    ----------
    traces:
        One packet trace per flow (same indices as ``envelopes``).
    envelopes:
        Per-flow (sigma, rho) descriptions used to configure regulators.
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset (the bounds hold for *any* phase; adversarial scenario
        tests sweep it).
    horizon:
        Injection stops here (defaults to the longest trace).
    drain:
        Keep running after the horizon until every queued packet is
        delivered, so worst-case delays are not truncated.
    engine:
        ``"batched"`` (default) or ``"legacy"`` -- see
        :func:`build_regulated_host`.  For the staggered-vacation host
        under the adversarial discipline the batched engine skips the
        event loop entirely: all arrivals are known up front, so the
        cell collapses into the array fast path
        (:func:`repro.simulation.batched.primed_vacation_host`) with
        one kernel pass per vacation busy train -- bit-identical
        delays, orders of magnitude fewer events.

    Returns
    -------
    HostResult
        Worst-case delay over all flows and per-flow statistics.
    """
    if len(traces) != len(envelopes):
        raise ValueError("traces and envelopes must align")
    if not traces:
        raise ValueError("at least one flow is required")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    # Resolve the effective mode up front (the builders resolve it the
    # same way; needed here to route the primed fast path).
    effective_mode = mode
    if mode == "adaptive":
        ctrl = AdaptiveController(envelopes, capacity)
        effective_mode = (
            "sigma-rho"
            if ctrl.select_mode() is ControlMode.SIGMA_RHO
            else "sigma-rho-lambda"
        )
    if horizon is None:
        horizon = max(tr.times[-1] + 1e-9 for tr in traces if len(tr))
    if (
        engine == "batched"
        and effective_mode == "sigma-rho-lambda"
        and discipline == "adversarial"
    ):
        plan = AdaptiveController(envelopes, capacity).build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
        restricted = [tr.restrict(horizon) for tr in traces]
        outcome = primed_vacation_host(
            [(tr.times, tr.sizes) for tr in restricted],
            plan.regulators,
            [base + off for off in plan.offsets],
            capacity=capacity,
            horizon=horizon,
            drain=drain,
        )
        per_flow = tuple(
            DelayStats.from_delays(d) for d in outcome.per_flow_delays
        )
        return HostResult(
            mode=effective_mode,
            worst_case_delay=max((s.worst for s in per_flow), default=0.0),
            per_flow=per_flow,
            events=outcome.batch_events,
            cancelled_events=0,
        )
    sim = Simulator()
    recorder = DelayRecorder(sim)
    entries, _mux = build_regulated_host(
        sim, envelopes, recorder, mode=mode, capacity=capacity,
        discipline=discipline, stagger_phase=stagger_phase, engine=engine,
    )
    for flow_id, (trace, entry) in enumerate(zip(traces, entries)):
        inject_trace(sim, trace.restrict(horizon), flow_id, entry)
    sim.run(until=None if drain else horizon)
    per_flow = tuple(recorder.stats(i) for i in range(len(traces)))
    worst = max((s.worst for s in per_flow), default=0.0)
    return HostResult(
        mode=effective_mode,
        worst_case_delay=worst,
        per_flow=per_flow,
        events=sim.events_processed,
        cancelled_events=sim.cancelled_events,
    )
