"""Declarative scenario specifications and the scenario registry.

A :class:`Scenario` is a single frozen record that composes everything
one analytic-vs-simulation cross-validation cell needs:

* **workload** -- per-flow stream kinds (the paper's audio/video plus
  the generic CBR / Poisson / on-off families), the aggregate
  utilisation, trace sharing (synchronised bursts) and optional
  per-flow start-time skew (adversarial staggered starts);
* **regulator configuration** -- control mode ((sigma, rho),
  (sigma, rho, lambda) or the adaptive algorithm) and the vacation
  stagger phase (the bounds hold for *any* phase, so scenarios sweep it
  adversarially);
* **topology** -- a single regulated host, a Theorem-7 critical-path
  chain, or a DSCT tree built over a transit-stub underlay whose
  critical path is reduced to a chain;
* **execution** -- backend (vectorised fluid or packet DES), horizon,
  grid resolution and seed.

Scenarios are *specs*, not runs: :mod:`repro.scenarios.runner` realises
traces, evaluates the analytic side in one vectorised pass and the
simulated side per scenario, and issues the soundness verdict
``measured <= bound + eps``.

The module also hosts the process-wide registry the curated corpus
(:mod:`repro.scenarios.corpus`) and the CLI ``scenarios list`` use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode
from repro.simulation.flow import PacketTrace
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive
from repro.workloads.profiles import DEFAULT_MTU, MIX_KINDS, TrafficMix, make_mix

__all__ = [
    "TOPOLOGIES",
    "BACKENDS",
    "SCENARIO_MODES",
    "Scenario",
    "scenario_from_dict",
    "register_scenario",
    "get_scenario",
    "registered_scenarios",
    "scenario_names",
    "clear_registry",
]

#: Topology families a scenario can request.
TOPOLOGIES = ("host", "chain", "tree")
#: Simulation backends.  ``tree_des`` runs the packet DES over the
#: *whole* DSCT tree (replication at every member) instead of the
#: critical-path chain reduction.  The ``*_legacy`` variants run the
#: same cells through the per-packet-event DES engine (the pre-batching
#: hot path): they exist for the batched-vs-legacy equivalence suite
#: and as an escape hatch, not for production campaigns.
BACKENDS = ("fluid", "des", "tree_des", "des_legacy", "tree_des_legacy")
#: Control modes (``adaptive`` resolves per realisation).
SCENARIO_MODES = ("sigma-rho", "sigma-rho-lambda", "adaptive")


@dataclass(frozen=True)
class Scenario:
    """One declarative cross-validation scenario.

    Attributes
    ----------
    name:
        Unique label (registry key; shows up in reports and test ids).
    kinds:
        Per-flow stream kinds, one entry per group flow
        (:data:`repro.workloads.profiles.MIX_KINDS`).
    utilization:
        Aggregate sustained rate ``sum_i rho_i / C``.  Values >= 1 are
        legal (unstable cells have infinite bounds and are vacuously
        sound) but only meaningful with ``mode="sigma-rho"``.
    mode:
        Regulator family, or ``"adaptive"`` to let the controller pick.
    topology:
        ``"host"`` -- the Fig.-3 single regulated host; ``"chain"`` --
        a Theorem-7 critical path of ``hops`` regulated hosts; ``"tree"``
        -- a DSCT tree over a transit-stub underlay, reduced to its
        critical path by the runner.
    hops:
        Chain length (``topology="chain"`` only).
    tree_members:
        Group size for ``topology="tree"``.
    backend:
        ``"fluid"`` (vectorised, default), ``"des"`` (packet-exact on
        the critical-path reduction) or ``"tree_des"`` (packet-exact
        over the whole DSCT tree with per-member replication; requires
        ``topology="tree"`` and ``mode="sigma-rho"`` -- the vacation
        window fit of the (sigma, rho, lambda) DES regulator does not
        scale to a hundred member pipelines).  ``"des_legacy"`` /
        ``"tree_des_legacy"`` run the same cells on the per-packet
        legacy DES engine (the batched-vs-legacy equivalence suite's
        reference).
    discipline:
        Worst-case service discipline for the measurement; the default
        adversarial accounting realises the general-MUX worst case.
    horizon:
        Traffic injection window in seconds.
    dt:
        Fluid grid resolution (ignored by the DES backend).
    seed:
        Base seed; all randomness is derived from it via
        :func:`repro.utils.rng.derive_seed`.
    shared:
        Reuse one realisation per stream kind (the paper's synchronised
        bursts -- the adversarial default).
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset, in ``[0, 1)``.
    start_offsets:
        Optional per-flow start-time skew in seconds (adversarial
        staggered starts); empty means no skew.
    propagation:
        Per-hop underlay propagation delay (chain topology; tree
        scenarios derive it from the underlay instead).
    capacity:
        Output link capacity ``C``.
    perf_budget:
        Optional wall-clock budget for realising + simulating this
        cell, in seconds (0 disables).  The runtime flags cells over
        budget as perf regressions -- a verdict on the *simulator*,
        separate from the soundness verdict on the bounds.
    tags:
        Free-form labels (``scenarios list`` filters on them).
    """

    name: str
    kinds: tuple[str, ...]
    utilization: float
    mode: str = "sigma-rho-lambda"
    topology: str = "host"
    hops: int = 1
    tree_members: int = 0
    backend: str = "fluid"
    discipline: str = "adversarial"
    horizon: float = 2.0
    dt: float = 2e-3
    seed: int = 0
    shared: bool = True
    stagger_phase: float = 0.0
    start_offsets: tuple[float, ...] = ()
    propagation: float = 0.0
    capacity: float = 1.0
    perf_budget: float = 0.0
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.kinds:
            raise ValueError("a scenario needs at least one flow kind")
        for kind in self.kinds:
            if kind not in MIX_KINDS:
                raise ValueError(
                    f"unknown stream kind {kind!r}; expected one of {MIX_KINDS}"
                )
        check_positive(self.utilization, "utilization")
        if self.mode not in SCENARIO_MODES:
            raise ValueError(
                f"mode must be one of {SCENARIO_MODES}, got {self.mode!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.topology == "chain" and self.hops < 1:
            raise ValueError("chain scenarios need hops >= 1")
        if self.topology == "tree" and self.tree_members < 4:
            raise ValueError("tree scenarios need tree_members >= 4")
        if self.backend in ("tree_des", "tree_des_legacy"):
            if self.topology != "tree":
                raise ValueError(
                    f"backend {self.backend!r} requires topology 'tree'"
                )
            if self.mode != "sigma-rho":
                raise ValueError(
                    f"backend {self.backend!r} requires mode 'sigma-rho'"
                )
        check_positive(self.horizon, "horizon")
        check_positive(self.dt, "dt")
        check_positive(self.capacity, "capacity")
        if not 0.0 <= self.stagger_phase < 1.0:
            raise ValueError(
                f"stagger_phase must lie in [0, 1), got {self.stagger_phase}"
            )
        if self.start_offsets:
            if len(self.start_offsets) != len(self.kinds):
                raise ValueError("start_offsets must have one entry per flow")
            if any(o < 0 for o in self.start_offsets):
                raise ValueError("start_offsets must be >= 0")
        if self.propagation < 0:
            raise ValueError("propagation must be >= 0")
        if self.perf_budget < 0:
            raise ValueError("perf_budget must be >= 0 (0 disables)")

    # -- derived ---------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of group flows at each regulated host."""
        return len(self.kinds)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.kinds)) == 1

    # -- realisation ------------------------------------------------------
    def mix(self) -> TrafficMix:
        """The workload as a utilisation-scaled :class:`TrafficMix`."""
        return make_mix(self.name, self.kinds).at_utilization(
            self.utilization, self.capacity
        )

    def realise_traces(self, mtu: Optional[float] = DEFAULT_MTU) -> list[PacketTrace]:
        """Generate the per-flow packet traces (start skew applied)."""
        mix = self.mix()
        traces = mix.generate_traces(
            self.horizon,
            derive_seed(self.seed, "scenario", self.name),
            shared=self.shared,
            mtu=mtu,
        )
        if self.start_offsets:
            traces = [
                tr.shifted(off) if off > 0 else tr
                for tr, off in zip(traces, self.start_offsets)
            ]
        return traces

    def realise_envelopes(
        self, traces: Sequence[PacketTrace]
    ) -> list[ArrivalEnvelope]:
        """Empirical (sigma_i, rho_i) envelopes of the realised traces.

        The regulators are configured from these, and -- crucially for
        soundness -- the analytic bounds are evaluated on the *same*
        parameters, so every trace conforms to the envelope its bound
        assumes (time skew does not change burstiness).
        """
        mix = self.mix()
        return [
            ArrivalEnvelope(max(tr.empirical_sigma(src.rate), 1e-9), src.rate)
            for tr, src in zip(traces, mix.sources)
        ]

    def effective_mode(self, envelopes: Sequence[ArrivalEnvelope]) -> str:
        """Resolve ``"adaptive"`` exactly the way the simulators do."""
        if self.mode != "adaptive":
            return self.mode
        ctrl = AdaptiveController(envelopes, self.capacity)
        return (
            "sigma-rho"
            if ctrl.select_mode() is ControlMode.SIGMA_RHO
            else "sigma-rho-lambda"
        )


#: Scenario fields serialised as JSON arrays that the dataclass holds
#: as tuples (JSON round-trips lose the distinction).
_TUPLE_FIELDS = ("kinds", "start_offsets", "tags")


def scenario_from_dict(payload: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from its ``dataclasses.asdict`` form.

    The inverse of the ``spec`` field stored in campaign records
    (:func:`repro.runtime.campaign.outcome_record`): JSON arrays are
    restored to the tuples the frozen dataclass expects, unknown keys
    are rejected (a spec that drifted past this code version must not
    silently drop fields), and full ``__post_init__`` validation runs.
    """
    if not isinstance(payload, dict):
        raise TypeError(
            f"scenario payload must be a dict, got {type(payload).__name__}"
        )
    from dataclasses import fields as dc_fields

    known = {f.name for f in dc_fields(Scenario)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"scenario payload has unknown keys {unknown}; "
            f"expected a subset of {sorted(known)}"
        )
    kwargs = dict(payload)
    for name in _TUPLE_FIELDS:
        if name in kwargs and isinstance(kwargs[name], list):
            kwargs[name] = tuple(kwargs[name])
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the process-wide registry (returned unchanged)."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_scenarios(tag: Optional[str] = None) -> list[Scenario]:
    """All registered scenarios (optionally filtered by tag), name-sorted."""
    out = [
        sc
        for _, sc in sorted(_REGISTRY.items())
        if tag is None or tag in sc.tags
    ]
    return out


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def clear_registry() -> None:
    """Empty the registry (test isolation helper)."""
    _REGISTRY.clear()
