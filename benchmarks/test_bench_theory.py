"""Theory artefacts: thresholds, control ranges, O(K^n) ratio, Lemma 2.

These regenerate the paper's analytical numbers:

* ``rho* = 0.73 C`` (homogeneous) and ``0.79 C`` (heterogeneous)
  aggregate thresholds, as limits of the exact finite-K crossings;
* control ranges ``2 - sqrt(3) ~ 0.27`` and ``(5 - sqrt(21))/2 ~ 0.21``;
* the improvement ratio's ``O(K^n)`` growth inside the heavy-load band;
* Lemma 2's height bound at the paper's n = 665 (7 layers).
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.experiments.theory import (
    height_bound_table,
    improvement_ratio_table,
    threshold_table,
)


def test_thresholds(benchmark, artifact_report):
    tt = run_once(benchmark, threshold_table, (2, 3, 5, 10, 30, 100, 1000))
    rows = [
        [r["k"], r["homogeneous"], r["heterogeneous"], r["heterogeneous_quadratic"]]
        for r in tt["rows"]
    ]
    artifact_report.append(
        render_table(
            ["K", "hom K*rho*", "het K*rho*", "het quadratic"],
            rows,
            title="== Rate thresholds (Theorems 3/4) ==",
            float_fmt="{:.4f}",
        )
        + f"\nlimits: hom {tt['limit_homogeneous']:.4f} het {tt['limit_heterogeneous']:.4f}"
    )
    last = tt["rows"][-1]
    assert abs(last["homogeneous"] - (math.sqrt(3) - 1)) < 1e-3
    assert abs(last["heterogeneous"] - (math.sqrt(21) - 3) / 2) < 1e-3
    assert abs(tt["control_range_homogeneous"] - (2 - math.sqrt(3))) < 1e-12
    assert abs(tt["control_range_heterogeneous"] - (5 - math.sqrt(21)) / 2) < 1e-12
    # K = 3 (the simulations' K): threshold used by the harness.
    k3 = tt["rows"][1]
    assert 0.78 < k3["homogeneous"] < 0.80
    assert 0.82 < k3["heterogeneous"] < 0.84


def test_improvement_ratio(benchmark, artifact_report):
    rows = run_once(
        benchmark, improvement_ratio_table, (2, 3, 5, 8, 12), (1, 2), 0.02
    )
    artifact_report.append(
        render_table(
            ["K", "n", "rho", "Dg/D^g", "O(K^n) bound"],
            [[r["k"], r["n"], r["rho"], r["ratio"], r["lower_bound"]] for r in rows],
            title="== Improvement ratio (Theorems 5/6) ==",
            float_fmt="{:.4f}",
        )
    )
    for r in rows:
        assert r["ratio"] >= r["lower_bound"]
    # O(K^n): at fixed n the ratio grows with K; at fixed K it grows with n.
    by_n1 = [r["ratio"] for r in rows if r["n"] == 1]
    assert by_n1 == sorted(by_n1)
    k3 = {r["n"]: r["ratio"] for r in rows if r["k"] == 3}
    assert k3[2] > k3[1]


def test_height_bound(benchmark, artifact_report):
    rows = run_once(
        benchmark, height_bound_table, (10, 50, 100, 300, 665, 1000, 5000), 3
    )
    artifact_report.append(
        render_table(
            ["n", "k", "height bound"],
            [[r["n"], r["k"], r["height_bound"]] for r in rows],
            title="== DSCT height bound (Lemma 2) ==",
        )
    )
    paper = next(r for r in rows if r["n"] == 665)
    assert paper["height_bound"] == 7
    heights = [r["height_bound"] for r in rows]
    assert heights == sorted(heights)
