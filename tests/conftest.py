"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.groups import MultiGroupNetwork
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_rtt_matrix


@pytest.fixture(scope="session")
def backbone():
    return fig5_backbone()


@pytest.fixture(scope="session")
def small_network(backbone):
    """60 hosts on the Fig-5 backbone (small but multi-domain)."""
    return attach_hosts(backbone, 60, rng=123)


@pytest.fixture(scope="session")
def small_rtt(small_network):
    return host_rtt_matrix(small_network)


@pytest.fixture(scope="session")
def small_mgn(small_network):
    return MultiGroupNetwork.fully_joined(small_network, 3, rng=123)


@pytest.fixture(scope="session")
def paper_network(backbone):
    """The paper-scale 665-host attachment (session-cached; ~0.1 s)."""
    return attach_hosts(backbone, 665, rng=2006)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
