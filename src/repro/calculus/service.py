"""Service curves and the classic delay/backlog bounds.

A *latency-rate* server ``beta_{R,T}(t) = R (t - T)^+`` guarantees that
in any backlogged period the output lags the input by at most latency
``T`` and is then served at rate at least ``R``.  The work-conserving
multiplexer of the paper (service rate ``C = 1``) is the special case
``T = 0, R = C``.

For a flow constrained by an :class:`~repro.calculus.envelope.ArrivalEnvelope`
``(sigma, rho)`` crossing a latency-rate server, the standard network
calculus bounds are

* delay: ``D <= T + sigma / R``  (horizontal deviation),
* backlog: ``B <= sigma + rho T`` (vertical deviation),
* output envelope: ``(sigma + rho T, rho)``.

These are the building blocks used to sanity-check the simulator and to
compose per-hop bounds along multicast paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calculus.envelope import ArrivalEnvelope
from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "LatencyRateServer",
    "delay_bound",
    "backlog_bound",
    "output_envelope",
]


@dataclass(frozen=True)
class LatencyRateServer:
    """A latency-rate service curve ``beta_{R,T}(t) = R (t - T)^+``."""

    rate: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.rate, "rate")
        check_non_negative(self.latency, "latency")

    def as_curve(self, horizon: float) -> PiecewiseLinearCurve:
        """The service curve on ``[0, horizon]``."""
        check_positive(horizon, "horizon")
        if self.latency >= horizon:
            return PiecewiseLinearCurve([0.0, horizon], [0.0, 0.0])
        return PiecewiseLinearCurve(
            [0.0, self.latency, horizon],
            [0.0, 0.0, self.rate * (horizon - self.latency)],
        )

    def concatenate(self, other: "LatencyRateServer") -> "LatencyRateServer":
        """Min-plus convolution of two latency-rate servers.

        ``beta_{R1,T1} (x) beta_{R2,T2} = beta_{min(R1,R2), T1+T2}`` --
        the end-to-end service curve of two servers in tandem.  This is
        how per-hop guarantees compose along a multicast path.
        """
        return LatencyRateServer(
            rate=min(self.rate, other.rate),
            latency=self.latency + other.latency,
        )

    def is_stable_for(self, envelope: ArrivalEnvelope) -> bool:
        """Stability: sustained input rate below the service rate."""
        return envelope.rho <= self.rate


def delay_bound(envelope: ArrivalEnvelope, server: LatencyRateServer) -> float:
    """Worst-case FIFO delay of ``envelope`` through ``server``.

    ``D <= T + sigma / R``; requires stability (``rho <= R``), else the
    delay is unbounded and ``inf`` is returned.
    """
    if not server.is_stable_for(envelope):
        return float("inf")
    return server.latency + envelope.sigma / server.rate


def backlog_bound(envelope: ArrivalEnvelope, server: LatencyRateServer) -> float:
    """Worst-case backlog of ``envelope`` through ``server``.

    ``B <= sigma + rho T``; ``inf`` if unstable.
    """
    if not server.is_stable_for(envelope):
        return float("inf")
    return envelope.sigma + envelope.rho * server.latency


def output_envelope(
    envelope: ArrivalEnvelope, server: LatencyRateServer
) -> ArrivalEnvelope:
    """Envelope of the departure process: ``(sigma + rho T, rho)``.

    The burst grows by ``rho * T`` because traffic may pile up during
    the server latency; the sustained rate is preserved.  This is the
    per-hop transformation used when chaining hops of a multicast tree
    analytically (Theorem 7's proof walks the longest path hop by hop).
    """
    if not server.is_stable_for(envelope):
        raise ValueError(
            "output envelope undefined for an unstable server "
            f"(rho={envelope.rho} > rate={server.rate})"
        )
    return ArrivalEnvelope(
        envelope.sigma + envelope.rho * server.latency, envelope.rho
    )
