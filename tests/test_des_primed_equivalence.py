"""Primed-vs-evented-vs-legacy equivalence for the PR-5 fast paths.

PR 3 pinned the window-batched components against the legacy
per-packet chain; this suite pins the PR-5 *closed-form* layer against
both.  The equivalence ladder per cell is::

    primed (engine="batched")  ==  evented (engine="evented")
                               <=  legacy  (engine="legacy")

with strict bit-identity on the first rung (the kernels sequence the
same float operations the evented components perform) and the
documented adversarial-release refinement on the second (equality off
the zero-backlog tie grid; sigma-rho adversarial host cells are in the
bit-identical class end to end).

Covered surfaces:

* :func:`repro.simulation.batched.sigma_rho_departures` against the
  evented ``TokenBucketComponent`` (corpus-style and hypothesis
  traces) -- including the stale-wakeup refill subtlety;
* the primed sigma-rho host and the primed ``mode="none"`` host;
* chain hop 0 as an array pass plus background-folded cross traffic at
  the later hops;
* busy-period tree fanout (one replication event per busy period per
  child) with background-folded cross traffic at every member;
* the background-train MUX fold against explicit packet injection.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.batched import (
    BatchMuxServer,
    sigma_rho_departures,
)
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.engine import Simulator
from repro.simulation.flow import AudioSource, PacketTrace, VBRVideoSource
from repro.simulation.host_sim import simulate_regulated_host
from repro.simulation.packet import Packet
from repro.simulation.regulator_sim import TokenBucketComponent
from repro.simulation.tree_sim import simulate_multicast_tree


def _stats_equal(a, b) -> bool:
    return (
        a.count == b.count
        and a.worst == b.worst
        and a.mean == b.mean
        and a.p50 == b.p50
        and a.p99 == b.p99
    )


@pytest.fixture(scope="module")
def video_traces():
    rho = 0.3
    trace = VBRVideoSource(rho).generate(2.0, rng=1).fragment(0.002)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
    return [trace] * 3, envs


# ----------------------------------------------------------------------
# The sigma-rho kernel against the evented token bucket
# ----------------------------------------------------------------------
def _evented_bucket_departures(times, sizes, sigma, rho):
    sim = Simulator()

    class _Tap:
        def __init__(self):
            self.deps = []

        def receive(self, pkt):
            self.deps.append(sim.now)

    tap = _Tap()
    comp = TokenBucketComponent(sim, sigma, rho, tap)
    from repro.simulation.host_sim import inject_trace

    inject_trace(sim, PacketTrace(times, sizes), 0, comp)
    sim.run()
    return np.asarray(tap.deps)


@pytest.mark.parametrize("rho", [0.15, 0.3, 0.6])
def test_sigma_rho_kernel_matches_evented_component(rho):
    trace = AudioSource(rho).generate(2.0, rng=5).fragment(0.002)
    sigma = max(trace.empirical_sigma(rho), 1e-6)
    evented = _evented_bucket_departures(trace.times, trace.sizes, sigma, rho)
    deps, drains = sigma_rho_departures(trace.times, trace.sizes, sigma, rho)
    assert np.array_equal(deps, evented)
    assert 0 < drains


def test_sigma_rho_kernel_starved_bucket():
    """A tight bucket forces wakeup chains (the stale-wake refill path)."""
    times = np.array([0.0, 0.0, 0.0, 0.5, 0.5, 2.0])
    sizes = np.array([0.04, 0.04, 0.04, 0.04, 0.04, 0.01])
    sigma, rho = 0.05, 0.1
    evented = _evented_bucket_departures(times, sizes, sigma, rho)
    deps, _ = sigma_rho_departures(times, sizes, sigma, rho)
    assert np.array_equal(deps, evented)


def test_sigma_rho_kernel_empty_and_validation():
    deps, drains = sigma_rho_departures(np.empty(0), np.empty(0), 1.0, 0.5)
    assert deps.size == 0 and drains == 0
    with pytest.raises(ValueError):
        sigma_rho_departures(np.array([0.0]), np.array([1.0]), 0.0, 0.5)
    with pytest.raises(ValueError):
        sigma_rho_departures(np.array([0.0]), np.array([1.0]), 1.0, -1.0)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_hypothesis_sigma_rho_kernel_bit_identical(data):
    n = data.draw(st.integers(1, 40))
    gaps = data.draw(
        st.lists(
            st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    sizes = np.asarray(
        data.draw(
            st.lists(
                st.floats(1e-3, 0.05, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
    )
    times = np.cumsum(np.asarray(gaps))
    sigma = data.draw(st.floats(0.05, 0.5))
    rho = data.draw(st.floats(0.05, 0.8))
    evented = _evented_bucket_departures(times, sizes, sigma, rho)
    deps, _ = sigma_rho_departures(times, sizes, sigma, rho)
    assert np.array_equal(deps, evented)


# ----------------------------------------------------------------------
# Host level: primed vs evented vs legacy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda", "none"])
def test_primed_host_equals_evented_host(video_traces, mode):
    traces, envs = video_traces
    kwargs = dict(mode=mode, discipline="adversarial", stagger_phase=0.21)
    primed = simulate_regulated_host(traces, envs, engine="batched", **kwargs)
    evented = simulate_regulated_host(traces, envs, engine="evented", **kwargs)
    assert primed.primed and not evented.primed
    assert all(
        _stats_equal(a, b) for a, b in zip(primed.per_flow, evented.per_flow)
    )
    assert primed.worst_case_delay == evented.worst_case_delay
    # The primed cell's event-count *analogue* (kernel passes + MUX
    # busy periods) never exceeds the evented count; for the vacation
    # family it is a small fraction (whole busy trains per pass --
    # token-bucket drains stay near one per packet, where the primed
    # win is heap/object overhead, not pass count).
    assert primed.events <= evented.events
    if mode == "sigma-rho-lambda":
        assert primed.events < evented.events / 3


def test_primed_sigma_rho_host_bit_identical_to_legacy(video_traces):
    """sigma-rho adversarial cells are in the bit-identical class: the
    zero-backlog release refinement only bites staggered vacation
    cells, so primed == evented == legacy exactly."""
    traces, envs = video_traces
    kwargs = dict(mode="sigma-rho", discipline="adversarial")
    primed = simulate_regulated_host(traces, envs, engine="batched", **kwargs)
    legacy = simulate_regulated_host(traces, envs, engine="legacy", **kwargs)
    assert all(
        _stats_equal(a, b) for a, b in zip(primed.per_flow, legacy.per_flow)
    )


def test_primed_host_respects_horizon_truncation(video_traces):
    traces, envs = video_traces
    for engine in ("batched", "evented"):
        kwargs = dict(
            mode="sigma-rho", discipline="adversarial",
            horizon=1.0, drain=False, engine=engine,
        )
        res = simulate_regulated_host(traces, envs, **kwargs)
        if engine == "batched":
            primed = res
        else:
            assert all(
                _stats_equal(a, b)
                for a, b in zip(primed.per_flow, res.per_flow)
            )


# ----------------------------------------------------------------------
# Chain level: hop-0 array pass + background-folded cross traffic
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
@pytest.mark.parametrize("hops", [1, 2, 3])
def test_primed_chain_equals_evented_chain(video_traces, mode, hops):
    traces, envs = video_traces
    kwargs = dict(
        mode=mode, discipline="adversarial",
        propagation=[0.001 * h for h in range(hops)], stagger_phase=0.37,
    )
    primed = simulate_regulated_chain(
        traces[0], [traces[1:]] * hops, envs, engine="batched", **kwargs
    )
    evented = simulate_regulated_chain(
        traces[0], [traces[1:]] * hops, envs, engine="evented", **kwargs
    )
    legacy = simulate_regulated_chain(
        traces[0], [traces[1:]] * hops, envs, engine="legacy", **kwargs
    )
    assert primed.primed and not evented.primed
    assert _stats_equal(primed.tagged_stats, evented.tagged_stats)
    # Adversarial-release refinement vs the legacy race.
    assert primed.tagged_stats.count == legacy.tagged_stats.count
    assert primed.worst_case_delay <= legacy.worst_case_delay + 1e-15
    assert primed.events < evented.events


def test_single_hop_primed_chain_runs_without_event_loop(video_traces):
    traces, envs = video_traces
    res = simulate_regulated_chain(
        traces[0], [traces[1:]], envs,
        mode="sigma-rho-lambda", discipline="adversarial", engine="batched",
    )
    assert res.primed
    # One kernel pass per vacation busy train + one per MUX busy
    # period: the event-count analogue stays below the total packet
    # population (a per-packet engine pays several events each).
    assert res.events < sum(len(tr) for tr in traces)
    assert res.cancelled_events == 0


def test_priority_chain_unaffected_by_priming(video_traces):
    """The priority discipline stays on the evented path (a strict
    priority order cannot be committed ahead of arrivals)."""
    traces, envs = video_traces
    batched = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs,
        mode="sigma-rho", discipline="priority", engine="batched",
    )
    legacy = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs,
        mode="sigma-rho", discipline="priority", engine="legacy",
    )
    assert not batched.primed
    assert _stats_equal(batched.tagged_stats, legacy.tagged_stats)


@st.composite
def _random_traces(draw):
    k = draw(st.integers(2, 3))
    n = draw(st.integers(3, 30))
    traces = []
    for _ in range(k):
        gaps = draw(
            st.lists(
                st.floats(1e-4, 0.15, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        sizes = draw(
            st.lists(
                st.floats(1e-3, 0.02, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        times = np.cumsum(np.asarray(gaps))
        traces.append(PacketTrace(times, np.asarray(sizes)))
    rho = draw(st.floats(0.1, 0.3))
    envs = [
        ArrivalEnvelope(max(tr.empirical_sigma(rho), 1e-6), rho)
        for tr in traces
    ]
    return traces, envs


@settings(max_examples=15, deadline=None)
@given(data=_random_traces(), mode=st.sampled_from(["sigma-rho", "sigma-rho-lambda"]))
def test_hypothesis_primed_host_and_chain_equal_evented(data, mode):
    traces, envs = data
    try:
        ev_host = simulate_regulated_host(
            traces, envs, mode=mode, discipline="adversarial",
            engine="evented",
        )
    except ValueError:
        # Packet exceeds the vacation working period: the primed path
        # must reject the same configurations.
        with pytest.raises(ValueError, match="working period"):
            simulate_regulated_host(
                traces, envs, mode=mode, discipline="adversarial",
                engine="batched",
            )
        return
    pr_host = simulate_regulated_host(
        traces, envs, mode=mode, discipline="adversarial", engine="batched"
    )
    assert all(
        _stats_equal(a, b) for a, b in zip(pr_host.per_flow, ev_host.per_flow)
    )
    pr_chain = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs, mode=mode,
        discipline="adversarial", engine="batched",
    )
    ev_chain = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs, mode=mode,
        discipline="adversarial", engine="evented",
    )
    assert _stats_equal(pr_chain.tagged_stats, ev_chain.tagged_stats)


# ----------------------------------------------------------------------
# Tree level: busy-period fanout + background-folded cross traffic
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_tree():
    from repro.overlay.groups import MultiGroupNetwork
    from repro.topology.attach import attach_hosts
    from repro.topology.transit_stub import transit_stub_backbone

    g = transit_stub_backbone(3, 2, 3, rng=1)
    net = attach_hosts(g, 12, rng=2)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=3)
    tree = mgn.build_tree(0, "dsct", rng=4)
    traces = [
        VBRVideoSource(0.25).generate(0.8, rng=i).fragment(0.002)
        for i in range(3)
    ]
    envs = [
        ArrivalEnvelope(max(t.empirical_sigma(0.25), 1e-6), 0.25)
        for t in traces
    ]
    return tree, mgn.latency, traces, envs


def test_tree_busy_period_fanout_bit_identical(small_tree):
    tree, latency, traces, envs = small_tree
    args = ([tree] * 3, 0, traces, envs, latency)
    kwargs = dict(mode="sigma-rho", discipline="adversarial")
    primed = simulate_multicast_tree(*args, engine="batched", **kwargs)
    evented = simulate_multicast_tree(*args, engine="evented", **kwargs)
    legacy = simulate_multicast_tree(*args, engine="legacy", **kwargs)
    assert primed.primed and not evented.primed
    assert primed.per_receiver_worst == evented.per_receiver_worst
    assert set(primed.per_receiver_worst) == set(legacy.per_receiver_worst)
    for host, worst in primed.per_receiver_worst.items():
        assert worst <= legacy.per_receiver_worst[host] + 1e-15
    # Replication is busy-period bound now: the whole tree must run on
    # a fraction of the evented engine's events (which already avoids
    # per-packet MUX finish events), let alone the legacy chain.
    assert primed.events < evented.events / 2
    assert primed.events < legacy.events / 4


def test_tree_fifo_stays_evented_and_bit_identical(small_tree):
    tree, latency, traces, envs = small_tree
    args = ([tree] * 3, 0, traces, envs, latency)
    kwargs = dict(mode="sigma-rho", discipline="fifo")
    batched = simulate_multicast_tree(*args, engine="batched", **kwargs)
    legacy = simulate_multicast_tree(*args, engine="legacy", **kwargs)
    assert not batched.primed
    assert batched.per_receiver_worst == legacy.per_receiver_worst


# ----------------------------------------------------------------------
# The background-train MUX fold against explicit injection
# ----------------------------------------------------------------------
def _run_mux(discipline, bg_as_background):
    """One MUX fed a dynamic tagged flow plus cross traffic, the cross
    either injected as packets (reference) or primed as a background
    train; returns the tagged deliveries."""
    rng = np.random.default_rng(7)
    tagged_t = np.sort(rng.uniform(0.0, 2.0, size=40))
    tagged_s = rng.uniform(0.002, 0.01, size=40)
    cross_t = np.sort(rng.uniform(0.0, 2.0, size=120))
    cross_s = rng.uniform(0.002, 0.01, size=120)

    sim = Simulator()
    delivered = []

    class _Tap:
        def receive(self, pkt):
            delivered.append((pkt.flow_id, sim.now))

        def receive_batch(self, pkts):
            for p in pkts:
                delivered.append((p.flow_id, sim.now))

    mux = BatchMuxServer(
        sim, 1.0, {0: _Tap(), 1: _Tap() if not bg_as_background else None},
        discipline=discipline,
    )
    if bg_as_background:
        mux.prime_background(cross_t, cross_s)
    else:
        sim.schedule_batch(
            cross_t,
            mux.receive,
            (
                (Packet(flow_id=1, size=float(s), t_emit=float(t)),)
                for t, s in zip(cross_t, cross_s)
            ),
        )
    sim.schedule_batch(
        tagged_t,
        mux.receive,
        (
            (Packet(flow_id=0, size=float(s), t_emit=float(t)),)
            for t, s in zip(tagged_t, tagged_s)
        ),
    )
    sim.run()
    return [t for fid, t in delivered if fid == 0], sim.events_processed


@pytest.mark.parametrize("discipline", ["adversarial", "fifo"])
def test_background_fold_matches_explicit_injection(discipline):
    primed, ev_primed = _run_mux(discipline, bg_as_background=True)
    explicit, ev_explicit = _run_mux(discipline, bg_as_background=False)
    assert primed == explicit  # bit-identical delivery instants
    assert ev_primed < ev_explicit  # background packets cost no events


def test_background_fold_guards():
    sim = Simulator()
    mux = BatchMuxServer(sim, 1.0, None, discipline="adversarial")
    with pytest.raises(ValueError, match="non-decreasing"):
        mux.prime_background(np.array([1.0, 0.5]), np.array([0.1, 0.1]))
    mux.prime_background(np.array([0.5]), np.array([0.1]))
    with pytest.raises(ValueError, match="already primed"):
        mux.prime_background(np.array([1.0]), np.array([0.1]))
