"""Worst-case delay bounds for the regulated EMcast tree (Section V).

* **Lemma 2** -- height bound of a DSCT tree over ``n`` members with
  cluster size base ``k``: ``H = ceil( log_k [k + (n - j1)(k - 1)] )``.
* **Theorem 7** -- multicast WDB with heterogeneous flows: the per-hop
  Theorem 1 bound accumulated over the ``H_hat - 1`` overlay hops of the
  longest path in the tallest group tree.
* **Theorem 8** -- the homogeneous special case (per-hop Theorem 2).
* **Remark 2** -- the (sigma, rho)-regulated baselines: per-hop Remark 1
  times ``H_hat - 1``.

The multicast bounds mirror the single-host bounds scaled by the number
of overlay hops; the threshold ``rho*`` and the ``O(K^n)`` improvement
ratio are therefore unchanged from Theorems 3-6 (parts ii-iv of
Theorems 7/8 simply carry them over), and we expose them by delegation.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.delay_bounds import (
    remark1_wdb_heterogeneous,
    remark1_wdb_homogeneous,
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
)
from repro.utils.validation import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

__all__ = [
    "dsct_height_bound",
    "theorem7_multicast_wdb_heterogeneous",
    "theorem8_multicast_wdb_homogeneous",
    "remark2_multicast_wdb_heterogeneous",
    "remark2_multicast_wdb_homogeneous",
]


def dsct_height_bound(n: int, k: int = 3, j1: int = 0) -> int:
    """Lemma 2: upper bound on the DSCT tree height (layer count).

    Parameters
    ----------
    n:
        Group size (number of members), ``n >= 1``.
    k:
        Cluster size base; intra/inter cluster sizes are random in
        ``[k, 3k - 1]`` and the tree is tallest when every cluster has
        exactly ``k`` members.  The paper (and [8]) set ``k = 3``.
    j1:
        Number of leftover members in the lowest layer,
        ``0 <= j1 <= k - 1``.  The paper's bound is stated for the
        worst-case packing; ``j1 = 0`` gives the loosest (largest) value.

    Returns
    -------
    int
        ``H = ceil( log_k [k + (n - j1)(k - 1)] )``.
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    if k < 2:
        raise ValueError(f"cluster size base k must be >= 2, got {k}")
    check_non_negative_int(j1, "j1")
    if j1 > k - 1:
        raise ValueError(f"j1 must be <= k - 1 = {k - 1}, got {j1}")
    if j1 >= n:
        raise ValueError(f"j1 must be < n = {n}, got {j1}")
    if n == 1:
        # A lone member is a single layer; the closed form is derived
        # for hierarchies with at least one clustering step.
        return 1
    arg = k + (n - j1) * (k - 1)
    return int(math.ceil(math.log(arg) / math.log(k)))


def _check_height(h_hat: int) -> int:
    check_positive_int(h_hat, "h_hat")
    return h_hat


def theorem7_multicast_wdb_heterogeneous(
    h_hat: int,
    sigmas: Sequence[float],
    rhos: Sequence[float],
    capacity: float = 1.0,
    per_hop_propagation: float = 0.0,
) -> float:
    """Theorem 7(i): multicast WDB, heterogeneous flows.

    ``D_hat_mg = (H_hat - 1) * [Theorem-1 per-hop bound]`` where
    ``H_hat = max_I H_I`` is the tallest group tree's height bound
    (Lemma 2).  ``per_hop_propagation`` optionally adds a fixed
    underlay propagation delay per overlay hop (zero in the paper's
    normalised analysis; the simulators measure it explicitly).
    """
    h_hat = _check_height(h_hat)
    check_positive(capacity, "capacity")
    hops = max(h_hat - 1, 0)
    per_hop = theorem1_wdb_heterogeneous(sigmas, rhos, capacity)
    return hops * (per_hop + per_hop_propagation)


def theorem8_multicast_wdb_homogeneous(
    h_hat: int,
    k: int,
    sigma: float,
    rho: float,
    sigma0: float | None = None,
    capacity: float = 1.0,
    per_hop_propagation: float = 0.0,
) -> float:
    """Theorem 8(i): multicast WDB, homogeneous flows.

    ``D_hat_mg = (H_hat-1) K sigma/(1-rho) + (H_hat-1)(sigma0-sigma)+/rho
    + 2 (H_hat-1) lambda sigma / rho``.
    """
    h_hat = _check_height(h_hat)
    hops = max(h_hat - 1, 0)
    per_hop = theorem2_wdb_homogeneous(k, sigma, rho, sigma0, capacity)
    return hops * (per_hop + per_hop_propagation)


def remark2_multicast_wdb_heterogeneous(
    h_hat: int,
    sigmas: Sequence[float],
    rhos: Sequence[float],
    capacity: float = 1.0,
    per_hop_propagation: float = 0.0,
) -> float:
    """Remark 2 baseline: ``D_mg = (H_hat - 1) sum sigma_i / (C - sum rho_i)``."""
    h_hat = _check_height(h_hat)
    hops = max(h_hat - 1, 0)
    per_hop = remark1_wdb_heterogeneous(sigmas, rhos, capacity)
    return hops * (per_hop + per_hop_propagation)


def remark2_multicast_wdb_homogeneous(
    h_hat: int,
    k: int,
    sigma: float,
    rho: float,
    capacity: float = 1.0,
    per_hop_propagation: float = 0.0,
) -> float:
    """Remark 2 baseline: ``D_mg = (H_hat - 1) K sigma0 / (C - K rho)``."""
    h_hat = _check_height(h_hat)
    hops = max(h_hat - 1, 0)
    per_hop = remark1_wdb_homogeneous(k, sigma, rho, capacity)
    return hops * (per_hop + per_hop_propagation)


def multicast_improvement_ratio_homogeneous(
    h_hat: int, k: int, sigma: float, rho: float, capacity: float = 1.0
) -> float:
    """Theorem 8(iv)'s ratio ``D_mg / D_hat_mg``.

    With zero propagation both bounds scale by the same ``(H_hat - 1)``,
    so the ratio equals the single-host ratio of Theorem 6 -- which is
    exactly why parts (ii)-(iv) of Theorems 7/8 carry over unchanged.
    """
    num = remark2_multicast_wdb_homogeneous(h_hat, k, sigma, rho, capacity)
    den = theorem8_multicast_wdb_homogeneous(h_hat, k, sigma, rho, capacity=capacity)
    if den == 0.0:
        return float("inf")
    return num / den
