"""Shared utilities for the reproduction library.

This subpackage hosts the small, dependency-free building blocks used
throughout :mod:`repro`:

* :mod:`repro.utils.units` -- unit conversions (bit rates, data amounts,
  time) and the normalisation conventions used by the paper (link
  capacity ``C = 1``).
* :mod:`repro.utils.validation` -- argument-checking helpers with
  consistent error messages.
* :mod:`repro.utils.rng` -- seeded random-number-generator plumbing so
  every simulation and tree construction is reproducible.
* :mod:`repro.utils.piecewise` -- vectorised piecewise-linear cumulative
  curves, the workhorse data structure behind the network-calculus and
  fluid-simulation code.
"""

from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.rng import RandomSource, ensure_rng, spawn_rngs
from repro.utils.units import (
    BITS_PER_BYTE,
    KBPS,
    MBPS,
    bits_to_megabits,
    megabits_to_bits,
    normalize_rate,
    normalized_to_rate,
    seconds_to_ms,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "PiecewiseLinearCurve",
    "RandomSource",
    "ensure_rng",
    "spawn_rngs",
    "BITS_PER_BYTE",
    "KBPS",
    "MBPS",
    "bits_to_megabits",
    "megabits_to_bits",
    "normalize_rate",
    "normalized_to_rate",
    "seconds_to_ms",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
