"""Regulator parameterisations: (sigma, rho) and (sigma, rho, lambda).

This module captures the *mathematics* of the two regulator families --
parameters, derived quantities (working period, vacation, regulator
period), envelopes and per-regulator delay bounds.  The event-driven
and fluid realisations that actually move traffic live in
:mod:`repro.simulation.regulator_sim` and :mod:`repro.simulation.fluid`;
they consume these parameter objects.

The (sigma, rho, lambda) regulator (Section III, Fig. 2 of the paper)
alternates

* an **on-state** ("working period") of ``W = sigma / (1 - rho)`` time
  units, during which it forwards in a work-conserving way at the full
  output capacity (slope 1 in Fig. 2 under the ``C = 1`` convention),
* an **off-state** ("vacation") of ``V = lambda sigma / rho - W`` time
  units, during which the flow's input to the multiplexer is blocked.

The *regulator period* is ``W + V = sigma lambda / rho``.  Choosing the
minimum feasible control factor ``lambda = 1/(1 - rho)`` (equation (1)
of the paper) minimises the vacation and yields ``V = sigma / rho``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.calculus.envelope import ArrivalEnvelope
from repro.utils.validation import check_in_range, check_non_negative, check_positive

__all__ = [
    "control_factor",
    "Regulator",
    "SigmaRhoRegulator",
    "SigmaRhoLambdaRegulator",
]


def control_factor(rho: float) -> float:
    """The minimum feasible control factor ``lambda = 1 / (1 - rho)``.

    Derived in Section III from the conservation requirement
    ``m W <= sigma + [m W + (m-1) V] rho``: any smaller ``lambda`` would
    let the regulator output more than it admits over ``m`` cycles.
    """
    check_in_range(rho, "rho", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    return 1.0 / (1.0 - rho)


@dataclass(frozen=True)
class Regulator:
    """Common interface of both regulator families.

    Attributes
    ----------
    sigma:
        Burst budget of the regulator (data units; capacity-seconds
        under ``C = 1``).
    rho:
        Sustained rate of the regulated flow (utilisation under
        ``C = 1``).
    """

    sigma: float
    rho: float

    def __post_init__(self) -> None:
        check_positive(self.sigma, "sigma")
        check_in_range(
            self.rho, "rho", 0.0, 1.0, inclusive_low=False, inclusive_high=False
        )

    def envelope(self) -> ArrivalEnvelope:
        """The (sigma, rho) envelope this regulator enforces on its output."""
        return ArrivalEnvelope(self.sigma, self.rho)

    def delay_bound_for_input(self, input_envelope: ArrivalEnvelope) -> float:
        """Worst-case delay added to a conformant input flow."""
        raise NotImplementedError


@dataclass(frozen=True)
class SigmaRhoRegulator(Regulator):
    """The classical Cruz (sigma, rho) regulator (token bucket).

    Fed a flow constrained by ``(sigma*, rho)``, it delays traffic by at
    most ``(sigma* - sigma)+ / rho``: only the burst in excess of its own
    budget must wait, and it drains at the sustained rate.
    """

    def delay_bound_for_input(self, input_envelope: ArrivalEnvelope) -> float:
        excess = max(input_envelope.sigma - self.sigma, 0.0)
        if excess == 0.0:
            return 0.0
        return excess / self.rho


@dataclass(frozen=True)
class SigmaRhoLambdaRegulator(Regulator):
    """The paper's (sigma, rho, lambda) vacation regulator.

    Parameters
    ----------
    sigma, rho:
        As in :class:`Regulator`.
    lam:
        Control factor.  Defaults to the minimum feasible value
        ``1/(1-rho)`` (equation (1)); larger values are legal but
        lengthen the vacation and therefore the delay bound.

    Notes
    -----
    Derived quantities (all properties):

    * working period ``W = sigma / (1 - rho)``,
    * regulator period ``P = sigma * lam / rho``,
    * vacation ``V = P - W`` (``sigma / rho`` at the minimum ``lam``).
    """

    lam: float = field(default=0.0)  # 0.0 means "use the minimum 1/(1-rho)"

    def __post_init__(self) -> None:
        super().__post_init__()
        min_lam = control_factor(self.rho)
        if self.lam == 0.0:
            object.__setattr__(self, "lam", min_lam)
        elif self.lam < min_lam - 1e-12:
            raise ValueError(
                f"lambda must be >= 1/(1-rho) = {min_lam:.6g} "
                f"(conservation constraint), got {self.lam}"
            )

    # -- derived quantities -------------------------------------------
    @property
    def working_period(self) -> float:
        """On-state duration ``W = sigma / (1 - rho)``."""
        return self.sigma / (1.0 - self.rho)

    @property
    def regulator_period(self) -> float:
        """Full cycle length ``P = sigma * lambda / rho``."""
        return self.sigma * self.lam / self.rho

    @property
    def vacation(self) -> float:
        """Off-state duration ``V = P - W`` (``sigma/rho`` at minimum lambda)."""
        return self.regulator_period - self.working_period

    @property
    def duty_cycle(self) -> float:
        """Fraction of time in the on-state, ``W / P``."""
        return self.working_period / self.regulator_period

    # -- bounds ---------------------------------------------------------
    def delay_bound_for_input(self, input_envelope: ArrivalEnvelope) -> float:
        """Lemma 1: ``D = (sigma* - sigma)+ / rho + 2 lambda sigma / rho``."""
        excess = max(input_envelope.sigma - self.sigma, 0.0)
        return excess / self.rho + 2.0 * self.lam * self.sigma / self.rho

    def backlog_bound(self) -> float:
        """Lemma 1's induction invariant: backlog ``<= (1 + lambda) sigma``."""
        return (1.0 + self.lam) * self.sigma

    # -- schedule -------------------------------------------------------
    def windows(
        self, horizon: float, offset: float = 0.0
    ) -> Iterator[tuple[float, float]]:
        """Yield on-state windows ``(start, end)`` up to ``horizon``.

        ``offset`` shifts the phase of the cycle; the adaptive controller
        staggers the offsets of a host's regulators so their working
        periods do not collide (Section III: "one regulator ... at each
        time in turn while other regulators block their flows").
        """
        check_positive(horizon, "horizon")
        check_non_negative(offset, "offset")
        period = self.regulator_period
        w = self.working_period
        start = offset
        while start < horizon:
            yield (start, min(start + w, horizon))
            start += period

    def is_on(self, t: float, offset: float = 0.0) -> bool:
        """Whether the regulator is in its on-state at time ``t``."""
        if t < offset:
            # Before the first scheduled window the regulator is blocked;
            # the adaptive controller starts every cycle at its offset.
            return False
        phase = (t - offset) % self.regulator_period
        return phase < self.working_period
