"""Event-driven regulator components.

Two regulator realisations for the discrete-event simulator:

* :class:`TokenBucketComponent` -- the classical (sigma, rho) regulator.
  A packet may pass the instant the bucket holds its size in tokens
  (peak rate unbounded, exactly Cruz's greedy (sigma, rho) shaper); the
  bucket refills at ``rho`` up to ``sigma``.  An input that already
  conforms to (sigma, rho) passes through undelayed -- which is why
  simultaneous bursts from K groups pile up in the downstream MUX, the
  failure mode the paper attacks.

* :class:`VacationComponent` -- the (sigma, rho, lambda) regulator of
  Section III.  It alternates working periods (forwarding queued
  traffic work-conservingly at the output rate, slope 1 in Fig. 2) and
  vacations (forwarding nothing).  The window schedule comes from a
  :class:`~repro.core.regulator.SigmaRhoLambdaRegulator` plus a phase
  offset assigned by the
  :class:`~repro.core.adaptive.AdaptiveController`'s stagger plan.
  Transmission is non-preemptive with a fit check: a packet starts only
  if it can finish inside the current window (deviation from the fluid
  model bounded by one packet serialisation time).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["TokenBucketComponent", "VacationComponent"]


class TokenBucketComponent:
    """Greedy (sigma, rho) shaper as a DES component.

    Parameters
    ----------
    sim:
        The simulator.
    sigma, rho:
        Bucket depth (capacity-seconds) and refill rate (utilisation).
    sink:
        Downstream component (``receive(packet)``).
    start_full:
        Whether the bucket starts full (the regulator's steady state;
        disable to model a cold start).
    """

    def __init__(
        self,
        sim: Simulator,
        sigma: float,
        rho: float,
        sink,
        *,
        start_full: bool = True,
    ):
        self.sim = sim
        self.sigma = check_positive(sigma, "sigma")
        self.rho = check_positive(rho, "rho")
        self.sink = sink
        self._tokens = self.sigma if start_full else 0.0
        self._last_refill = 0.0
        self._queue: deque[Packet] = deque()
        self._wakeup = None

    # -- bookkeeping -----------------------------------------------------
    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.sigma, self._tokens + self.rho * (now - self._last_refill)
        )
        self._last_refill = now

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._queue)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        self._queue.append(packet)
        self._drain()

    def receive_batch(self, packets) -> None:
        """Accept several packets arriving at the current instant (one
        replicated busy period from a batched MUX release).

        Equivalent to sequential :meth:`receive` calls: the extra
        refills sequential receives would perform are zero-elapsed
        (``tokens + rho * 0.0 == tokens``), so one drain pass over the
        longer queue yields identical departures.
        """
        self._queue.extend(packets)
        self._drain()

    def _drain(self) -> None:
        self._refill()
        while self._queue and self._tokens >= self._queue[0].size - 1e-15:
            pkt = self._queue.popleft()
            self._tokens -= pkt.size
            self.sink.receive(pkt)
        if self._queue:
            deficit = self._queue[0].size - self._tokens
            eta = deficit / self.rho
            if self._wakeup is not None:
                self._wakeup.cancel()
            self._wakeup = self.sim.schedule_in(eta, self._drain)


class VacationComponent:
    """(sigma, rho, lambda) vacation regulator as a DES component.

    Parameters
    ----------
    sim:
        The simulator.
    regulator:
        Parameter object providing working period / vacation / period.
    sink:
        Downstream component.
    offset:
        Phase offset of the window cycle (stagger plan).
    out_rate:
        Forwarding rate during working periods.  The paper sets it to
        the full output capacity ``C = 1`` ("the value of the slope of
        the (sigma, rho, lambda) regulator curve is 1").
    """

    def __init__(
        self,
        sim: Simulator,
        regulator: SigmaRhoLambdaRegulator,
        sink,
        *,
        offset: float = 0.0,
        out_rate: float = 1.0,
    ):
        self.sim = sim
        self.regulator = regulator
        self.sink = sink
        self.offset = check_non_negative(offset, "offset")
        self.out_rate = check_positive(out_rate, "out_rate")
        self._queue: deque[Packet] = deque()
        self._busy = False
        self._wake = None

    # -- window arithmetic -------------------------------------------------
    # Window m covers [offset + m P, offset + m P + W).  All queries go
    # through the integer window index so that float noise at a window
    # boundary cannot produce a "next window" equal to the current time
    # (which would spin the event loop).
    _TOL = 1e-12

    def _window_index(self, t: float) -> int:
        """Index of the cycle containing ``t`` (-1 before the first)."""
        if t < self.offset - self._TOL:
            return -1
        return int((t - self.offset) // self.regulator.regulator_period)

    def window_at(self, t: float) -> Optional[tuple[float, float]]:
        """The working window containing ``t``, or None if on vacation."""
        m = self._window_index(t)
        if m < 0:
            return None
        period = self.regulator.regulator_period
        start = self.offset + m * period
        end = start + self.regulator.working_period
        if start - self._TOL <= t < end - self._TOL:
            return (start, end)
        return None

    def next_window_start(self, t: float) -> float:
        """Start time of the first working window at or after ``t``."""
        m = self._window_index(t)
        if m < 0:
            return self.offset
        period = self.regulator.regulator_period
        start = self.offset + m * period
        if t < start + self.regulator.working_period - self._TOL:
            return max(t, start)  # inside window m already
        return self.offset + (m + 1) * period

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._queue)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        self._queue.append(packet)
        if not self._busy:
            self._try_start()

    def _try_start(self) -> None:
        """Start transmitting the head packet if a window allows it."""
        if self._busy or not self._queue:
            return
        now = self.sim.now
        head = self._queue[0]
        tx_time = head.size / self.out_rate
        window = self.window_at(now)
        if window is not None and now + tx_time <= window[1] + 1e-15:
            self._busy = True
            self.sim.schedule_in(tx_time, self._finish_tx)
            return
        # Doesn't fit (or on vacation): wait for the next window in which
        # the packet fits entirely (fit check, non-preemptive).
        if tx_time > self.regulator.working_period + 1e-15:
            raise ValueError(
                "packet serialisation time exceeds the working period; "
                "decrease packet sizes or increase sigma"
            )
        if window is None:
            start = self.next_window_start(now)
        else:
            # Inside a window the packet does not fit into: jump to the
            # next cycle via the window index (strictly in the future).
            m = self._window_index(now)
            start = self.offset + (m + 1) * self.regulator.regulator_period
        # Never allow a wake at (or before) the current instant -- float
        # noise here would spin the event loop at a frozen clock.
        start = max(start, now + self._TOL)
        if self._wake is None or self._wake.cancelled or self._wake.time > start:
            if self._wake is not None:
                self._wake.cancel()
            self._wake = self.sim.schedule(start, self._wake_up)

    def _wake_up(self) -> None:
        self._wake = None
        self._try_start()

    def _finish_tx(self) -> None:
        pkt = self._queue.popleft()
        self._busy = False
        self.sink.receive(pkt)
        self._try_start()
