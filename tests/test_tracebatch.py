"""Batched trace synthesis: the bit-identity contract.

``realise_batch`` is throughput-only: every trace, envelope and
``_Realised`` execution fact must equal the per-cell ``_lean_realise``
path bit for bit, over generated matrices and hand-built edge cells
covering every mix kind, start offsets, unshared flows and the MTU
fragmentation split.  The batch sigma kernel is pinned against its
scalar reference (including pack splitting), the vectorised on/off
generator against the retired scalar while-loop, and the
``batch_realise`` toggle against byte-identical campaign summaries.
"""

import filecmp
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.scenarios.tracebatch as tb
from repro.runtime.executor import SerialExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.cellmatrix import _lean_realise
from repro.scenarios.spec import Scenario
from repro.scenarios.tracebatch import (
    _empirical_sigma_fast,
    batch_empirical_sigma,
    realise_batch,
)
from repro.simulation.flow import OnOffSource, PacketTrace
from repro.workloads.profiles import MIX_KINDS

pytestmark = pytest.mark.runtime


def _assert_batch_matches_percell(scenarios):
    batch, info = realise_batch(scenarios, {}, {})
    assert len(batch) == len(scenarios)
    assert info["lanes_generated"] > 0
    frag, src = {}, {}
    for sc, b in zip(scenarios, batch):
        p = _lean_realise(sc, frag, src)
        assert b is not None, sc.name
        assert b.eff_mode == p.eff_mode
        assert b.eff_backend == p.eff_backend
        assert b.mtu == p.mtu
        assert b.hops == p.hops
        assert b.propagation == p.propagation
        assert b.height_ok == p.height_ok
        assert b.extra_eps == p.extra_eps
        assert len(b.traces) == len(p.traces)
        for bt, pt in zip(b.traces, p.traces):
            assert np.array_equal(bt.times, pt.times)  # bitwise
            assert np.array_equal(bt.sizes, pt.sizes)
        for be, pe in zip(b.envelopes, p.envelopes):
            assert be.sigma == pe.sigma
            assert be.rho == pe.rho


# ----------------------------------------------------------------------
# Batched realisation vs the per-cell path
# ----------------------------------------------------------------------
class TestBatchRealisationEquivalence:
    def test_generated_matrix_bit_identical(self):
        # 96 generated cells: every family, shared and unshared flows,
        # staggered starts, host/chain/tree topologies, des slices.
        _assert_batch_matches_percell(generate_scenarios(96, seed=123))

    def test_edge_cells_bit_identical(self):
        base = dict(utilization=0.6)
        cells = [
            # Every mix kind in one cell (audio/video packets straddle
            # the MTU: fragmentation on; cbr/poisson packets under it).
            Scenario(name="e-all-kinds", kinds=MIX_KINDS, **base),
            Scenario(name="e-cap", kinds=("cbr",) * 4, capacity=2.0, **base),
            Scenario(
                name="e-offsets",
                kinds=("onoff", "audio", "cbr"),
                start_offsets=(0.0, 0.13, 0.29),
                **base,
            ),
            Scenario(
                name="e-unshared", kinds=("cbr", "cbr", "onoff"),
                shared=False, **base,
            ),
            Scenario(name="e-adaptive", kinds=("audio", "video"),
                     mode="adaptive", **base),
            Scenario(name="e-overload", kinds=("cbr",) * 3,
                     utilization=1.4, mode="sigma-rho"),
            Scenario(name="e-fifo", kinds=("poisson", "cbr"),
                     discipline="fifo", **base),
            Scenario(name="e-chain", kinds=("cbr", "video"),
                     topology="chain", hops=3, **base),
            Scenario(name="e-des", kinds=("cbr", "onoff", "audio"),
                     backend="des", mode="sigma-rho", **base),
            Scenario(name="e-horizon", kinds=("audio", "audio"),
                     horizon=0.8, **base),
        ]
        _assert_batch_matches_percell(cells)

    @given(
        st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from(MIX_KINDS), min_size=1, max_size=4
                ),
                st.sampled_from((0.35, 0.6, 0.85)),
                st.booleans(),  # shared
                st.booleans(),  # start offsets
                st.sampled_from(
                    ("sigma-rho", "sigma-rho-lambda", "adaptive")
                ),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_cells_bit_identical(self, drawn):
        cells = []
        for i, (kinds, u, shared, skew, mode) in enumerate(drawn):
            offsets = (
                tuple(0.07 * j for j in range(len(kinds))) if skew else ()
            )
            cells.append(
                Scenario(
                    name=f"hyp-{i}",
                    kinds=tuple(kinds),
                    utilization=u,
                    mode=mode,
                    shared=shared,
                    start_offsets=offsets,
                    seed=i * 31 + 7,
                )
            )
        _assert_batch_matches_percell(cells)

    def test_bad_cell_never_fails_batch_mates(self, monkeypatch):
        cells = [
            Scenario(name="ok-a", kinds=("cbr", "onoff"), utilization=0.5),
            Scenario(name="victim", kinds=("onoff", "cbr"), utilization=0.5),
            Scenario(name="ok-b", kinds=("audio", "cbr"), utilization=0.5),
        ]
        real = OnOffSource.generate

        def sabotage(self, horizon, rng=None):
            if isinstance(rng, int) and rng % 2 == hash("x") % 2:
                pass
            raise RuntimeError("injected generate crash")

        # Crash every onoff lane: the two cells that own one fall back
        # (None), the audio/cbr-only cell still realises.
        monkeypatch.setattr(OnOffSource, "generate", sabotage)
        batch, _ = realise_batch(cells, {}, {})
        monkeypatch.setattr(OnOffSource, "generate", real)
        assert batch[0] is None and batch[1] is None
        assert batch[2] is not None


# ----------------------------------------------------------------------
# The batch sigma kernel vs its scalar reference
# ----------------------------------------------------------------------
class TestBatchSigma:
    def _lanes(self, rng, n=24):
        lanes = []
        for i in range(n):
            m = int(rng.integers(0, 150))
            if i % 5 == 0 and m:
                # Duplicate timestamps: forces the scalar route.
                t = np.sort(rng.choice(rng.uniform(0, 2.0, max(m // 2, 1)), m))
            else:
                t = np.sort(rng.uniform(0, 2.0, m))
                t = np.unique(t)
            s = rng.uniform(1e-4, 0.01, t.shape[0])
            lanes.append((t, s, float(rng.choice((0.0, 0.3, 1.1)))))
        return lanes

    def test_matches_scalar_lane_by_lane(self):
        lanes = self._lanes(np.random.default_rng(17))
        out = batch_empirical_sigma(lanes)
        for i, lane in enumerate(lanes):
            assert out[i] == _empirical_sigma_fast(*lane)  # bitwise

    def test_matches_trace_method(self):
        rng = np.random.default_rng(21)
        for _ in range(6):
            t = np.unique(rng.uniform(0, 2.0, 80))
            s = rng.uniform(1e-4, 0.01, t.shape[0])
            rho = float(rng.uniform(0.0, 1.5))
            (out,) = batch_empirical_sigma([(t, s, rho)])
            assert out == PacketTrace(times=t, sizes=s).empirical_sigma(rho)

    def test_pack_splitting_is_invisible(self, monkeypatch):
        lanes = self._lanes(np.random.default_rng(29))
        whole = batch_empirical_sigma(lanes)
        monkeypatch.setattr(tb, "MAX_SIGMA_PACK_ELEMENTS", 200)
        monkeypatch.setattr(tb, "MAX_SIGMA_PACK_RATIO", 1.05)
        split = batch_empirical_sigma(lanes)
        assert np.array_equal(whole, split)


# ----------------------------------------------------------------------
# The vectorised on/off generator vs the retired scalar loop
# ----------------------------------------------------------------------
class TestOnOffVectorised:
    @staticmethod
    def _reference(src, horizon, seed):
        """The pre-vectorisation while-loop, verbatim."""
        gen = np.random.default_rng(seed)
        times_parts = []
        gap = src.packet_size / src.peak_rate
        t = 0.0
        while t < horizon:
            on = gen.exponential(src.mean_on)
            burst = np.arange(t, min(t + on, horizon), gap)
            if burst.size:
                times_parts.append(burst)
            t += on + gen.exponential(src.mean_off)
        if times_parts:
            times = np.concatenate(times_parts)
        else:
            times = np.empty(0, dtype=np.float64)
        return PacketTrace(times, np.full(times.shape, src.packet_size))

    def test_bit_identical_to_scalar_loop(self):
        rng = np.random.default_rng(33)
        for trial in range(60):
            src = OnOffSource(
                peak_rate=float(rng.uniform(0.5, 4.0)),
                mean_on=float(rng.uniform(0.01, 0.5)),
                mean_off=float(rng.uniform(0.01, 0.8)),
                packet_size=float(rng.uniform(1e-3, 2e-2)),
            )
            horizon = float(rng.uniform(0.2, 4.0))
            seed = int(rng.integers(1_000_000_000))
            ref = self._reference(src, horizon, seed)
            out = src.generate(horizon, rng=seed)
            assert np.array_equal(out.times, ref.times), trial
            assert np.array_equal(out.sizes, ref.sizes), trial


# ----------------------------------------------------------------------
# The batch_realise toggle through the campaign stack
# ----------------------------------------------------------------------
class TestBatchRealiseToggle:
    def test_run_batch_toggle_is_invisible(self):
        scenarios = generate_scenarios(24, seed=11)
        on = run_batch(
            scenarios, executor=SerialExecutor(), group_cells=True,
            batch_realise=True,
        )
        off = run_batch(
            scenarios, executor=SerialExecutor(), group_cells=True,
            batch_realise=False,
        )
        for a, b in zip(on.outcomes, off.outcomes):
            assert a.scenario.name == b.scenario.name
            assert a.measured == b.measured
            assert a.bound == b.bound
            assert a.eps == b.eps
            assert a.events == b.events
            assert a.sound == b.sound
            assert a.error == b.error

    def test_summaries_byte_identical(self, tmp_path, capsys):
        """CLI end to end: the batch-realise toggle changes no byte of
        the campaign summary (grouped == per-cell realisation)."""
        from repro.experiments.cli import main

        stores = {}
        for label, flag in (("on", "--batch-realise"),
                            ("off", "--no-batch-realise")):
            store = tmp_path / label
            args = [
                "scenarios", "run", "--count", "12", "--seed", "5",
                "--no-corpus", "--store", str(store), flag,
            ]
            assert main(args) == 0
            stores[label] = store / "summary.json"
        capsys.readouterr()
        assert filecmp.cmp(stores["on"], stores["off"], shallow=False)
        summary = json.loads(stores["on"].read_text())
        assert summary["cells"] == 12
