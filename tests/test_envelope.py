"""(sigma, rho) arrival envelopes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus.envelope import (
    ArrivalEnvelope,
    aggregate_envelope,
    empirical_envelope,
)
from repro.utils.piecewise import PiecewiseLinearCurve as PLC


class TestArrivalEnvelope:
    def test_bound_is_affine(self):
        e = ArrivalEnvelope(2.0, 0.5)
        assert e.bound(0.0) == pytest.approx(2.0)
        assert e.bound(4.0) == pytest.approx(4.0)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ArrivalEnvelope(-1.0, 0.5)
        with pytest.raises(ValueError):
            ArrivalEnvelope(1.0, -0.5)

    def test_addition_superposes(self):
        e = ArrivalEnvelope(1.0, 0.2) + ArrivalEnvelope(2.0, 0.3)
        assert e.sigma == pytest.approx(3.0)
        assert e.rho == pytest.approx(0.5)

    def test_scaled(self):
        e = ArrivalEnvelope(1.0, 0.2).scaled(10.0)
        assert e.sigma == pytest.approx(10.0)
        assert e.rho == pytest.approx(2.0)

    def test_conforms_against_curve(self):
        burst = PLC.from_packet_arrivals([0.0], [1.5])
        assert ArrivalEnvelope(1.5, 0.1).conforms(burst)
        assert not ArrivalEnvelope(1.0, 0.1).conforms(burst)

    def test_violation_measures_excess(self):
        burst = PLC.from_packet_arrivals([0.0], [1.5])
        assert ArrivalEnvelope(1.0, 0.0).violation(burst) == pytest.approx(0.5)
        assert ArrivalEnvelope(2.0, 0.0).violation(burst) == 0.0

    def test_as_curve(self):
        c = ArrivalEnvelope(1.0, 0.5).as_curve(4.0)
        assert c(0.0) == pytest.approx(1.0)
        assert c(4.0) == pytest.approx(3.0)

    def test_burst_duration_is_vacation(self):
        # V = sigma / rho, the paper's vacation period.
        e = ArrivalEnvelope(0.05, 0.25)
        assert e.burst_duration() == pytest.approx(0.2)
        with pytest.raises(ValueError):
            ArrivalEnvelope(1.0, 0.0).burst_duration()


class TestAggregate:
    def test_aggregates_sums(self):
        agg = aggregate_envelope(
            [ArrivalEnvelope(1.0, 0.1), ArrivalEnvelope(2.0, 0.2)]
        )
        assert agg.sigma == pytest.approx(3.0)
        assert agg.rho == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_envelope([])


class TestEmpirical:
    def test_empirical_envelopes_are_tight_and_conformant(self):
        c = PLC.from_packet_arrivals([0.0, 0.5, 1.0], [1.0, 0.5, 1.0])
        for env in empirical_envelope(c, [0.1, 0.5, 1.0]):
            assert env.conforms(c)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.01, max_value=2.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_envelope_monotone_in_rho(self, packets):
        times = sorted(t for t, _ in packets)
        sizes = [s for _, s in packets]
        c = PLC.from_packet_arrivals(times, sizes)
        envs = empirical_envelope(c, [0.0, 0.5, 1.0, 2.0])
        sigmas = [e.sigma for e in envs]
        # Larger sustained rate never needs a larger burst allowance.
        assert all(a >= b - 1e-9 for a, b in zip(sigmas, sigmas[1:]))
