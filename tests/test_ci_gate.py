"""The nightly baseline gate, wired end to end (PR-5 satellite).

The PR-4 mechanism (``scenarios run --baseline`` / ``scenarios diff``)
is only a regression net if a pinned baseline store actually exists
and matches what a fresh run of the same matrix produces.  These tests
keep the checked-in ``ci/baseline_smoke`` store honest:

* it must load cleanly, cover exactly the tier-1 smoke campaign's 24
  cells (``generate_scenarios(24, seed=11)``, the same matrix
  ``tests/test_runtime_campaign.py`` runs), and contain no failures;
* a fresh evaluation of that matrix must gate cleanly against it --
  cell keys are content hashes, so any drift in spec hashing, seeding
  or verdicts breaks the diff loudly here rather than at night;
* ``ci/gate.sh`` must keep pointing at the pinned store and matrix.
"""

from pathlib import Path

import pytest

from repro.runtime import diff_records, open_store, run_campaign
from repro.runtime.store import cell_key
from repro.scenarios import generate_scenarios

pytestmark = pytest.mark.runtime

REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / "ci" / "baseline_smoke"
GATE = REPO / "ci" / "gate.sh"

#: The tier-1 smoke campaign (must match ci/gate.sh and
#: tests/test_runtime_campaign.py).
N_SMOKE, SMOKE_SEED = 24, 11


@pytest.fixture(scope="module")
def pinned():
    store = open_store(BASELINE, must_exist=True)
    return store.load()


def test_pinned_baseline_covers_the_smoke_matrix(pinned):
    matrix = generate_scenarios(N_SMOKE, seed=SMOKE_SEED)
    assert set(pinned) == {cell_key(sc) for sc in matrix}
    assert all(rec["sound"] and not rec["error"] for rec in pinned.values())
    assert all(rec.get("budget_ok", True) for rec in pinned.values())


def test_fresh_smoke_run_gates_clean_against_pinned(pinned, tmp_path):
    matrix = generate_scenarios(N_SMOKE, seed=SMOKE_SEED)
    campaign = run_campaign(matrix, store=tmp_path / "fresh")
    assert campaign.clean
    fresh = open_store(tmp_path / "fresh").load()
    diff = diff_records(pinned, fresh)
    # strict: coverage loss is a regression too.
    assert diff.gate(strict=True), diff.summary_lines()
    assert not diff.added and not diff.removed


def test_gate_script_targets_the_pinned_store():
    text = GATE.read_text()
    assert "ci/baseline_smoke" in text
    assert f"--count {N_SMOKE}" in text and f"--seed {SMOKE_SEED}" in text
    assert "--baseline" in text
    assert GATE.stat().st_mode & 0o111, "ci/gate.sh must be executable"
