"""Dynamic group membership: joins, leaves, and local repair.

EMcast trees live in churn; DSCT/NICE are incremental protocols (the
paper's trees are built by members joining one by one).  This module
adds the dynamic operations on top of the static builders so churn
studies are possible:

* :func:`join_member` -- a new host attaches to the closest member that
  still has fan-out budget (the incremental join rule of
  cluster-hierarchy protocols);
* :func:`leave_member` -- a departing member's children are re-parented
  to its parent (grandparent promotion), the standard local repair;
  leaving the root promotes the child with the most remaining capacity;
* :class:`ChurnSimulator` -- applies a join/leave schedule and tracks
  *tree stability* (re-parent operations per event), one of the classic
  EMcast metrics named alongside WDB in the paper's Section I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.overlay.tree import MulticastTree
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["join_member", "leave_member", "ChurnSimulator", "ChurnStats"]


def join_member(
    tree: MulticastTree,
    new_host: int,
    rtt: np.ndarray,
    *,
    max_fanout: Optional[int] = None,
) -> MulticastTree:
    """Attach ``new_host`` to its RTT-closest member with spare fan-out.

    Parameters
    ----------
    tree:
        The current tree.
    new_host:
        Host index to add (must not already be a member).
    rtt:
        Host RTT matrix.
    max_fanout:
        Optional fan-out ceiling per parent (capacity-aware joins).

    Returns
    -------
    A new tree containing the host (trees are immutable values).
    """
    members = tree.members()
    if new_host in members:
        raise ValueError(f"host {new_host} is already a member")
    fanout = tree.fanout()
    candidates = [
        m for m in members
        if max_fanout is None or fanout.get(m, 0) < max_fanout
    ]
    if not candidates:
        raise ValueError("no member has spare fan-out for the join")
    ordered = sorted(candidates, key=lambda m: (rtt[new_host, m], m))
    parent = dict(tree.parent)
    parent[new_host] = ordered[0]
    return MulticastTree(root=tree.root, parent=parent)


def leave_member(
    tree: MulticastTree, host: int
) -> tuple[MulticastTree, int]:
    """Remove ``host``; re-parent its children to its parent.

    Returns the new tree and the number of re-parent operations (the
    stability cost of the leave).  Leaving the root promotes the child
    with the smallest index (deterministic) to root.
    """
    members = tree.members()
    if host not in members:
        raise ValueError(f"host {host} is not a member")
    if len(members) == 1:
        raise ValueError("cannot remove the last member")
    parent = dict(tree.parent)
    children = tree.children().get(host, [])
    if host == tree.root:
        # Promote the first child to root; its siblings re-parent to it.
        new_root = children[0]
        del parent[new_root]
        moves = 0
        for c in children[1:]:
            parent[c] = new_root
            moves += 1
        return MulticastTree(root=new_root, parent=parent), moves
    grandparent = parent.pop(host)
    moves = 0
    for c in children:
        parent[c] = grandparent
        moves += 1
    return MulticastTree(root=tree.root, parent=parent), moves


@dataclass
class ChurnStats:
    """Aggregate churn metrics."""

    joins: int = 0
    leaves: int = 0
    reparent_operations: int = 0
    height_trace: list[int] = field(default_factory=list)

    @property
    def stability(self) -> float:
        """Mean re-parent operations per membership event (lower = stabler)."""
        events = self.joins + self.leaves
        return self.reparent_operations / events if events else 0.0


class ChurnSimulator:
    """Apply random join/leave events to a tree and track stability.

    Parameters
    ----------
    tree:
        Initial tree.
    rtt:
        Host RTT matrix (joins cluster by proximity).
    standby:
        Pool of host indices not currently in the tree, available to join.
    max_fanout:
        Optional fan-out ceiling for joins.
    """

    def __init__(
        self,
        tree: MulticastTree,
        rtt: np.ndarray,
        standby: Sequence[int],
        *,
        max_fanout: Optional[int] = None,
    ):
        members = tree.members()
        overlap = members & set(standby)
        if overlap:
            raise ValueError(f"standby hosts already in the tree: {overlap}")
        self.tree = tree
        self.rtt = rtt
        self.standby = list(standby)
        self.max_fanout = max_fanout
        self.stats = ChurnStats()

    def step(self, rng: RandomSource = None) -> str:
        """One random membership event; returns ``"join"`` or ``"leave"``.

        Joins and leaves are balanced 50/50 while both are possible;
        degenerate states (empty standby pool / minimal tree) force the
        other event.
        """
        gen = ensure_rng(rng)
        can_join = bool(self.standby)
        can_leave = self.tree.size > 2
        if not can_join and not can_leave:
            raise RuntimeError("neither join nor leave is possible")
        do_join = can_join and (not can_leave or gen.random() < 0.5)
        if do_join:
            idx = int(gen.integers(len(self.standby)))
            host = self.standby.pop(idx)
            self.tree = join_member(
                self.tree, host, self.rtt, max_fanout=self.max_fanout
            )
            self.stats.joins += 1
        else:
            members = sorted(self.tree.members() - {self.tree.root})
            host = members[int(gen.integers(len(members)))]
            self.tree, moves = leave_member(self.tree, host)
            self.standby.append(host)
            self.stats.leaves += 1
            self.stats.reparent_operations += moves
        self.stats.height_trace.append(self.tree.height)
        return "join" if do_join else "leave"

    def run(self, events: int, rng: RandomSource = None) -> ChurnStats:
        gen = ensure_rng(rng)
        for _ in range(events):
            self.step(gen)
        return self.stats
