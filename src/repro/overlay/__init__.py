"""Overlay multicast substrate: trees, clustering, protocols, groups.

* :mod:`repro.overlay.tree` -- generic rooted multicast trees (parent
  maps, heights, critical paths, link stress, validation).
* :mod:`repro.overlay.clustering` -- RTT-based proximity clustering with
  the paper's cluster sizes ``s in [k, 3k-1]`` and medoid core election;
  shared by DSCT and NICE.
* :mod:`repro.overlay.dsct` -- DSCT [Tu & Jia, GlobeCom'04]: a
  location-aware hierarchy; members partition into *local domains* (one
  per backbone router), intra-cluster layers grow inside each domain,
  and the domains' local cores build inter-cluster layers on top.
* :mod:`repro.overlay.nice` -- NICE [Banerjee et al., SIGCOMM'02]-style
  layered clustering without location knowledge (the paper's baseline).
* :mod:`repro.overlay.capacity_aware` -- capacity-aware variants: host
  fan-out bounded by output capacity over aggregate flow rate (the
  bottleneck-avoidance strategy the paper argues against).
* :mod:`repro.overlay.groups` -- multi-group bookkeeping: K groups over
  one host population, per-host joined-group counts, per-group trees.
"""

from repro.overlay.capacity_aware import (
    capacity_aware_dsct,
    capacity_aware_nice,
    capacity_degree_bound,
)
from repro.overlay.clustering import cluster_by_proximity, elect_core
from repro.overlay.dsct import build_dsct_tree
from repro.overlay.dynamics import ChurnSimulator, join_member, leave_member
from repro.overlay.groups import MultiGroupNetwork
from repro.overlay.nice import build_nice_tree
from repro.overlay.tree import MulticastTree

__all__ = [
    "MulticastTree",
    "cluster_by_proximity",
    "elect_core",
    "build_dsct_tree",
    "ChurnSimulator",
    "join_member",
    "leave_member",
    "build_nice_tree",
    "capacity_aware_dsct",
    "capacity_aware_nice",
    "capacity_degree_bound",
    "MultiGroupNetwork",
]
