"""Vectorised piecewise-linear cumulative curves.

Network calculus (Cruz's (sigma, rho) calculus, which the paper builds
on) reasons about *cumulative* functions ``F(t)`` = amount of traffic
seen in ``[0, t]``.  This module provides the one data structure the
whole library shares for such functions: a non-decreasing
piecewise-linear curve stored as two NumPy breakpoint arrays.

Two families of curves occur:

* **fluid curves** -- continuous, e.g. regulator output at rate
  ``rho`` or the zig-zag output of a (sigma, rho, lambda) regulator
  (Fig. 2 of the paper).  All binary operations (sum, minimum) are
  supported.
* **staircase curves** -- packet arrivals, with instantaneous jumps.
  A jump at time ``q`` is represented by two consecutive breakpoints
  with the same time coordinate.  Staircases support evaluation,
  first-passage queries and deviation measures, but not binary
  operations (which would need full left/right-limit bookkeeping that
  nothing in the library requires).

The two deviation measures are the bridge between curves and delays:

* :meth:`PiecewiseLinearCurve.max_vertical_deviation` -- the worst-case
  *backlog* between an arrival and a departure curve.
* :meth:`PiecewiseLinearCurve.max_horizontal_deviation` -- the
  worst-case *FIFO delay*: ``sup_y [T_D(y) - T_A(y)]`` where ``T(y)``
  is the first time a curve reaches level ``y``.

Everything is vectorised; curves with millions of breakpoints (packet
traces) are handled without Python-level loops, per the project's
HPC guidance (vectorise, avoid copies).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["PiecewiseLinearCurve"]

_EPS = 1e-12


class PiecewiseLinearCurve:
    """A non-decreasing piecewise-linear cumulative function.

    Parameters
    ----------
    times:
        Breakpoint time coordinates, non-decreasing.  Equal consecutive
        times encode an instantaneous jump (staircase curves).
    values:
        Breakpoint values, non-decreasing, same length as ``times``.

    Notes
    -----
    The curve is defined on ``[times[0], times[-1]]``.  Evaluation
    outside the domain clamps to the boundary values (a cumulative
    process is flat before it starts and after it ends).
    """

    __slots__ = ("_t", "_v")

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if t.ndim != 1 or v.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if t.shape != v.shape:
            raise ValueError(
                f"times and values must have equal length, got {t.shape[0]} "
                f"and {v.shape[0]}"
            )
        if t.shape[0] < 1:
            raise ValueError("a curve needs at least one breakpoint")
        if np.any(np.diff(t) < -_EPS):
            raise ValueError("times must be non-decreasing")
        if np.any(np.diff(v) < -_EPS):
            raise ValueError("values must be non-decreasing (cumulative curve)")
        # Copy so the curve owns immutable state.
        self._t = np.array(t, dtype=np.float64)
        self._v = np.array(v, dtype=np.float64)
        self._t.setflags(write=False)
        self._v.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_segments(
        cls,
        start_time: float,
        start_value: float,
        durations: Iterable[float],
        rates: Iterable[float],
    ) -> "PiecewiseLinearCurve":
        """Build a fluid curve from consecutive (duration, rate) segments."""
        dur = np.asarray(list(durations), dtype=np.float64)
        rate = np.asarray(list(rates), dtype=np.float64)
        if dur.shape != rate.shape:
            raise ValueError("durations and rates must have equal length")
        if np.any(dur < 0):
            raise ValueError("durations must be >= 0")
        if np.any(rate < 0):
            raise ValueError("rates must be >= 0 for a cumulative curve")
        t = np.concatenate(([start_time], start_time + np.cumsum(dur)))
        v = np.concatenate(([start_value], start_value + np.cumsum(dur * rate)))
        return cls(t, v)

    @classmethod
    def from_rate_grid(
        cls,
        dt: float,
        rates: Sequence[float],
        *,
        start_time: float = 0.0,
        start_value: float = 0.0,
    ) -> "PiecewiseLinearCurve":
        """Build a fluid curve from rates sampled on a uniform grid.

        This is the fast path used by the fluid simulation backend: the
        cumulative curve is a single ``cumsum``.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        r = np.asarray(rates, dtype=np.float64)
        if r.ndim != 1:
            raise ValueError("rates must be one-dimensional")
        if np.any(r < 0):
            raise ValueError("rates must be >= 0")
        n = r.shape[0]
        t = start_time + dt * np.arange(n + 1, dtype=np.float64)
        v = np.empty(n + 1, dtype=np.float64)
        v[0] = start_value
        np.cumsum(r * dt, out=v[1:])
        v[1:] += start_value
        return cls(t, v)

    @classmethod
    def from_packet_arrivals(
        cls, times: Sequence[float], sizes: Sequence[float]
    ) -> "PiecewiseLinearCurve":
        """Build a right-continuous staircase from packet (time, size) pairs.

        ``times`` must be non-decreasing; simultaneous packets merge into
        a single jump.  The curve starts at value 0 at the first arrival
        time (use :meth:`shift` to reposition).
        """
        t = np.asarray(times, dtype=np.float64)
        s = np.asarray(sizes, dtype=np.float64)
        if t.shape != s.shape:
            raise ValueError("times and sizes must have equal length")
        if t.size == 0:
            return cls([0.0], [0.0])
        if np.any(np.diff(t) < 0):
            raise ValueError("packet times must be non-decreasing")
        if np.any(s <= 0):
            raise ValueError("packet sizes must be > 0")
        # Merge simultaneous arrivals into one jump.
        uniq_t, inverse = np.unique(t, return_inverse=True)
        jump = np.zeros(uniq_t.shape[0], dtype=np.float64)
        np.add.at(jump, inverse, s)
        cum = np.cumsum(jump)
        # Each jump needs a pre-jump and post-jump breakpoint at the
        # same time; the pre-jump value is the previous cumulative total.
        bt = np.repeat(uniq_t, 2)
        bv = np.empty_like(bt)
        bv[0::2] = np.concatenate(([0.0], cum[:-1]))
        bv[1::2] = cum
        return cls(bt, bv)

    @classmethod
    def affine(
        cls, sigma: float, rho: float, horizon: float
    ) -> "PiecewiseLinearCurve":
        """The token-bucket envelope ``gamma(t) = sigma + rho * t`` on [0, horizon].

        Note ``gamma(0) = sigma`` (the instantaneous burst), matching the
        (sigma, rho) constraint of the paper.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if sigma < 0 or rho < 0:
            raise ValueError("sigma and rho must be >= 0")
        return cls([0.0, horizon], [sigma, sigma + rho * horizon])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view)."""
        return self._t

    @property
    def values(self) -> np.ndarray:
        """Breakpoint values (read-only view)."""
        return self._v

    @property
    def start_time(self) -> float:
        return float(self._t[0])

    @property
    def end_time(self) -> float:
        return float(self._t[-1])

    @property
    def total(self) -> float:
        """Final cumulative value."""
        return float(self._v[-1])

    @property
    def is_staircase(self) -> bool:
        """True if the curve contains at least one instantaneous jump."""
        return bool(np.any(np.diff(self._t) <= _EPS))

    def __len__(self) -> int:
        return int(self._t.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseLinearCurve(n={len(self)}, "
            f"domain=[{self.start_time:g}, {self.end_time:g}], "
            f"total={self.total:g})"
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, q, side: str = "right"):
        return self.evaluate(q, side=side)

    def evaluate(self, q, side: str = "right"):
        """Evaluate the curve at time(s) ``q``.

        ``side='right'`` returns the right-continuous value (post-jump at
        jump instants), ``side='left'`` the left limit (pre-jump).
        Values outside the domain clamp to the boundary values.
        """
        q_arr = np.asarray(q, dtype=np.float64)
        scalar = q_arr.ndim == 0
        q_arr = np.atleast_1d(q_arr)
        t, v = self._t, self._v
        if side == "right":
            idx = np.searchsorted(t, q_arr, side="right") - 1
        elif side == "left":
            idx = np.searchsorted(t, q_arr, side="left") - 1
        else:
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        idx = np.clip(idx, 0, len(t) - 1)
        nxt = np.minimum(idx + 1, len(t) - 1)
        t0, t1 = t[idx], t[nxt]
        v0, v1 = v[idx], v[nxt]
        span = t1 - t0
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(span > _EPS, (q_arr - t0) / np.where(span > _EPS, span, 1.0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        out = v0 + frac * (v1 - v0)
        # Clamp strictly outside the domain (exact boundary hits are
        # handled by the index logic above, preserving left/right limits
        # at boundary jumps).
        out = np.where(q_arr < t[0], v[0], out)
        out = np.where(q_arr > t[-1], v[-1], out)
        return float(out[0]) if scalar else out

    def first_passage(self, levels):
        """First time(s) the curve reaches the given cumulative level(s).

        For a level inside a jump the jump instant is returned; for a
        level on a plateau the left edge of the plateau is returned.
        Levels above :attr:`total` yield ``inf``; levels at or below the
        initial value yield the start time.
        """
        y = np.asarray(levels, dtype=np.float64)
        scalar = y.ndim == 0
        y = np.atleast_1d(y)
        t, v = self._t, self._v
        idx = np.searchsorted(v, y, side="left")  # first i with v[i] >= y
        out = np.empty_like(y)
        beyond = idx >= len(v)
        out[beyond] = np.inf
        ok = ~beyond
        i = idx[ok]
        prev = np.maximum(i - 1, 0)
        t0, t1 = t[prev], t[i]
        v0, v1 = v[prev], v[i]
        rise = v1 - v0
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(rise > _EPS, (y[ok] - v0) / np.where(rise > _EPS, rise, 1.0), 1.0)
        frac = np.clip(frac, 0.0, 1.0)
        res = t0 + frac * (t1 - t0)
        # Levels at/below the initial value are reached at the start.
        res = np.where(y[ok] <= v[0], t[0], res)
        out[ok] = res
        return float(out[0]) if scalar else out

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shift(self, dt: float = 0.0, dv: float = 0.0) -> "PiecewiseLinearCurve":
        """Translate the curve by ``dt`` in time and ``dv`` in value."""
        return PiecewiseLinearCurve(self._t + dt, self._v + dv)

    def scale(self, factor: float) -> "PiecewiseLinearCurve":
        """Scale values by a non-negative ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return PiecewiseLinearCurve(self._t, self._v * factor)

    def restrict(self, t_end: float) -> "PiecewiseLinearCurve":
        """Restrict the curve to ``[start_time, t_end]``."""
        if t_end < self.start_time:
            raise ValueError("t_end precedes the curve domain")
        if t_end >= self.end_time:
            return self
        keep = self._t <= t_end
        t = np.append(self._t[keep], t_end)
        v = np.append(self._v[keep], self.evaluate(t_end, side="left"))
        return PiecewiseLinearCurve(t, v)

    def segment_rates(self) -> np.ndarray:
        """Slope of each segment (``inf`` for jumps)."""
        dt = np.diff(self._t)
        dv = np.diff(self._v)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(dt > _EPS, dv / np.where(dt > _EPS, dt, 1.0), np.inf)
        r = np.where((dt <= _EPS) & (dv <= _EPS), 0.0, r)
        return r

    # ------------------------------------------------------------------
    # Binary operations (fluid curves only)
    # ------------------------------------------------------------------
    def _require_fluid(self, op: str) -> None:
        if self.is_staircase:
            raise ValueError(
                f"{op} requires a continuous (fluid) curve; this curve has "
                "instantaneous jumps. Deviation measures support staircases."
            )

    def __add__(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Pointwise sum on the union breakpoint grid (fluid curves)."""
        if not isinstance(other, PiecewiseLinearCurve):
            return NotImplemented
        self._require_fluid("curve addition")
        other._require_fluid("curve addition")
        grid = np.union1d(self._t, other._t)
        return PiecewiseLinearCurve(grid, self.evaluate(grid) + other.evaluate(grid))

    def minimum(self, other: "PiecewiseLinearCurve") -> "PiecewiseLinearCurve":
        """Pointwise minimum, inserting segment-crossing breakpoints."""
        if not isinstance(other, PiecewiseLinearCurve):
            raise TypeError("minimum expects another PiecewiseLinearCurve")
        self._require_fluid("pointwise minimum")
        other._require_fluid("pointwise minimum")
        grid = np.union1d(self._t, other._t)
        a = self.evaluate(grid)
        b = other.evaluate(grid)
        # Where the sign of (a-b) flips inside a segment the min has a
        # kink; insert the crossing point.
        d = a - b
        flip = np.nonzero(d[:-1] * d[1:] < 0)[0]
        if flip.size:
            t0, t1 = grid[flip], grid[flip + 1]
            d0, d1 = d[flip], d[flip + 1]
            tc = t0 + (t1 - t0) * (d0 / (d0 - d1))
            grid = np.sort(np.concatenate([grid, tc]))
            a = self.evaluate(grid)
            b = other.evaluate(grid)
        return PiecewiseLinearCurve(grid, np.minimum(a, b))

    # ------------------------------------------------------------------
    # Deviation measures
    # ------------------------------------------------------------------
    def max_vertical_deviation(self, departure: "PiecewiseLinearCurve") -> float:
        """Worst-case backlog ``sup_t [A(t) - D(t)]`` (self is the arrival).

        Both left and right limits are examined at every breakpoint of
        either curve, so staircase arrivals are handled exactly.
        """
        grid = np.union1d(self._t, departure._t)
        hi = self.evaluate(grid, side="right") - departure.evaluate(grid, side="right")
        lo = self.evaluate(grid, side="left") - departure.evaluate(grid, side="left")
        return float(max(hi.max(), lo.max(), 0.0))

    def max_horizontal_deviation(
        self, departure: "PiecewiseLinearCurve", *, level_rtol: float = 1e-9
    ) -> float:
        """Worst-case FIFO delay between this arrival curve and ``departure``.

        Computed as ``sup_y [T_D(y) - T_A(y)]`` over the union of the
        curves' breakpoint levels (the supremum of a piecewise-linear
        function of the level is attained at a level breakpoint).
        Returns ``inf`` if the departure curve never delivers all the
        arrived traffic (caller should extend the simulation horizon).

        ``level_rtol`` guards against floating-point creep in
        numerically reconstructed departure curves (e.g. the fluid
        backend's ``S + runmin(A - S)`` form, whose top plateau can sit
        a few ULPs below the arrival total and push the top level's
        first passage arbitrarily late): departure passages are queried
        at ``y - level_rtol * total``, an under-estimate of at most
        ``tol / service_rate``.
        """
        tol = level_rtol * max(abs(self.total), 1.0)
        if departure.total < self.total - tol:
            return float("inf")
        levels = np.union1d(self._v, departure._v)
        # Exclude only the degenerate zero level: an arrival curve that
        # starts above zero (e.g. a (sigma, rho) envelope with its
        # instantaneous burst) attains its worst deviation exactly at
        # the initial level sigma.
        levels = levels[(levels > _EPS) & (levels <= self.total + tol)]
        if levels.size == 0:
            return 0.0
        ta = self.first_passage(levels)
        td = departure.first_passage(np.maximum(levels - tol, 0.0))
        return float(max((td - ta).max(), 0.0))

    # ------------------------------------------------------------------
    # (sigma, rho) envelope queries
    # ------------------------------------------------------------------
    def min_sigma(self, rho: float) -> float:
        """Smallest burst ``sigma`` such that the curve conforms to (sigma, rho).

        This is ``sup_{t1<=t2} [F(t2) - F(t1) - rho (t2 - t1)]``, the
        empirical burstiness of the paper's constraint
        ``R ~ (sigma, rho)``.  For a piecewise-linear ``F`` the supremum
        is attained at breakpoints, so a running-minimum scan suffices.
        """
        if rho < 0:
            raise ValueError(f"rho must be >= 0, got {rho}")
        g = self._v - rho * self._t
        run_min = np.minimum.accumulate(g)
        return float(max((g - run_min).max(), 0.0))

    def conforms(self, sigma: float, rho: float, tol: float = 1e-9) -> bool:
        """Whether the curve satisfies the (sigma, rho) burstiness constraint."""
        return self.min_sigma(rho) <= sigma + tol

    def mean_rate(self) -> float:
        """Average rate over the curve's domain."""
        span = self.end_time - self.start_time
        if span <= _EPS:
            return 0.0
        return (self.total - float(self._v[0])) / span
