"""SoA grouped cell-matrix evaluation: the bit-identity contract.

``evaluate_cells_grouped`` is throughput-only: every ``CellResult``
field must equal the per-cell ``evaluate_cell`` path bit for bit, over
the curated corpus, generated matrices (which mix groupable hosts with
chain/tree/fifo fallback cells) and hand-built edge cells; a cell whose
grouped evaluation raises must fail only its own verdict with the exact
per-cell error.  The lean kernels the grouped path substitutes for the
scalar ones (`_empirical_sigma_fast`, `_first_passage_arrays`, the
``batch_fluid_*`` rows, ``primed_adversarial_worst``) are pinned
against their scalar references here too.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.simulation.batched as batched_mod
from repro.calculus.envelope import ArrivalEnvelope
from repro.runtime.cost import _spec_features, plan_chunks, spec_group_key
from repro.runtime.executor import SerialExecutor, _run_one
from repro.scenarios import adversarial_corpus, generate_scenarios, run_batch
from repro.scenarios import cellmatrix as cm
from repro.scenarios.runner import evaluate_cell, evaluate_cells_grouped
from repro.scenarios.spec import Scenario
from repro.simulation.batched import (
    primed_adversarial_host,
    primed_adversarial_worst,
)
from repro.simulation.flow import PacketTrace
from repro.simulation.fluid import (
    _first_passage_arrays,
    batch_fluid_next_empty,
    batch_fluid_on_time,
    batch_fluid_token_bucket,
    batch_fluid_work_conserving,
    fluid_next_empty,
    fluid_on_time,
    fluid_token_bucket,
    fluid_work_conserving,
)
from repro.utils.piecewise import PiecewiseLinearCurve

pytestmark = pytest.mark.runtime


def _assert_grouped_matches_percell(scenarios):
    per_cell = [_run_one(evaluate_cell, i, sc) for i, sc in enumerate(scenarios)]
    grouped = evaluate_cells_grouped(scenarios)
    assert len(grouped) == len(scenarios)
    for p, g in zip(per_cell, grouped):
        assert g.index == p.index
        assert g.error == p.error
        assert g.value == p.value  # dataclass equality: every field, no approx
        assert g.wall_time > 0.0


# ----------------------------------------------------------------------
# Grouped vs per-cell equivalence
# ----------------------------------------------------------------------
class TestGroupedEquivalence:
    def test_curated_corpus_bit_identical(self):
        _assert_grouped_matches_percell(adversarial_corpus())

    def test_generated_matrix_bit_identical(self):
        # 256 generated cells: hosts (groupable) mixed with chains,
        # trees, legacy backends and adaptive modes (fallback).
        _assert_grouped_matches_percell(generate_scenarios(256, seed=77))

    def test_edge_cells_bit_identical(self):
        base = dict(kinds=("cbr", "poisson", "onoff"), utilization=0.6)
        cells = [
            Scenario(name="edge-cap", capacity=2.0, mode="sigma-rho", **base),
            Scenario(name="edge-adaptive", mode="adaptive", **base),
            Scenario(
                name="edge-offsets",
                mode="sigma-rho",
                start_offsets=(0.0, 0.1, 0.25),
                **base,
            ),
            Scenario(name="edge-unshared", shared=False, **base),
            Scenario(
                name="edge-overload",
                kinds=("cbr",) * 3,
                utilization=1.4,
                mode="sigma-rho",
            ),
            Scenario(name="edge-fifo", discipline="fifo", **base),
            Scenario(name="edge-chain", topology="chain", hops=3, **base),
            Scenario(
                name="edge-des-stagger",
                backend="des",
                stagger_phase=0.37,
                **base,
            ),
            Scenario(name="edge-des-sr", backend="des", mode="sigma-rho", **base),
            Scenario(name="edge-legacy", backend="des_legacy", **base),
        ]
        _assert_grouped_matches_percell(cells)

    def test_run_batch_grouping_toggle_is_invisible(self):
        scenarios = generate_scenarios(24, seed=11)
        grouped = run_batch(
            scenarios, executor=SerialExecutor(), group_cells=True
        )
        plain = run_batch(
            scenarios, executor=SerialExecutor(), group_cells=False
        )
        for g, p in zip(grouped.outcomes, plain.outcomes):
            assert g.scenario.name == p.scenario.name
            assert g.measured == p.measured
            assert g.bound == p.bound
            assert g.eps == p.eps
            assert g.events == p.events
            assert g.sound == p.sound
            assert g.error == p.error

    def test_serial_executor_advertises_grouping(self):
        assert SerialExecutor().supports_cell_grouping
        from repro.runtime import ProcessExecutor

        assert not ProcessExecutor(jobs=2).supports_cell_grouping


# ----------------------------------------------------------------------
# Error isolation
# ----------------------------------------------------------------------
class TestErrorIsolation:
    def test_crashing_cell_fails_only_its_own_verdict(self, monkeypatch):
        """A kernel crash inside a group reruns per-cell: the failing
        cell carries the per-cell path's exact error, neighbours keep
        their values."""
        cells = [
            Scenario(
                name="victim-des",
                kinds=("cbr",) * 3,
                utilization=0.6,
                mode="sigma-rho",
                backend="des",
            ),
            Scenario(
                name="bystander-fluid",
                kinds=("cbr",) * 3,
                utilization=0.6,
                mode="sigma-rho",
            ),
            Scenario(
                name="bystander-lambda",
                kinds=("audio", "video", "cbr"),
                utilization=0.7,
            ),
            Scenario(
                name="bystander-chain",
                kinds=("cbr",) * 3,
                utilization=0.6,
                topology="chain",
                hops=2,
            ),
        ]
        healthy = evaluate_cells_grouped(cells)
        assert all(r.error is None for r in healthy)

        real = batched_mod.sigma_rho_departures

        def sabotage(*args, **kwargs):
            raise RuntimeError("injected kernel crash")

        # Both the grouped kernel and the per-cell primed host resolve
        # sigma_rho_departures through this module global.
        monkeypatch.setattr(batched_mod, "sigma_rho_departures", sabotage)
        grouped = evaluate_cells_grouped(cells)
        per_cell = [_run_one(evaluate_cell, i, sc) for i, sc in enumerate(cells)]
        monkeypatch.setattr(batched_mod, "sigma_rho_departures", real)

        assert grouped[0].value is None
        assert "injected kernel crash" in grouped[0].error
        # The grouped fallback reruns evaluate_cell, so the captured
        # traceback is the per-cell one, character for character.
        assert grouped[0].error == per_cell[0].error
        for r, h in zip(grouped[1:], healthy[1:]):
            assert r.error is None
            assert r.value == h.value


# ----------------------------------------------------------------------
# Lean kernel pins (each grouped substitute vs its scalar reference)
# ----------------------------------------------------------------------
class TestLeanKernels:
    def test_empirical_sigma_fast_matches_trace_method(self):
        rng = np.random.default_rng(5)
        for trial in range(8):
            n = int(rng.integers(1, 120))
            # Duplicate timestamps exercise the staircase jumps.
            times = np.sort(rng.choice(rng.uniform(0, 2.0, n), size=n))
            sizes = rng.uniform(1e-4, 0.01, n)
            tr = PacketTrace(times=times, sizes=sizes)
            for rho in (0.0, 0.3, 1.7):
                assert cm._empirical_sigma_fast(
                    tr.times, tr.sizes, rho
                ) == tr.empirical_sigma(rho)
        assert cm._empirical_sigma_fast(np.empty(0), np.empty(0), 0.5) == 0.0

    def test_first_passage_arrays_matches_curve(self):
        rng = np.random.default_rng(9)
        t = np.cumsum(rng.uniform(0.0, 0.2, 60))
        v = np.cumsum(rng.choice([0.0, 0.0, 0.05, 0.2], size=60))
        curve = PiecewiseLinearCurve(t, v)
        levels = np.concatenate(
            [[0.0, v[0], v[-1], v[-1] + 1.0], rng.uniform(0, v[-1], 40)]
        )
        assert np.array_equal(
            _first_passage_arrays(t, v, levels),
            curve.first_passage(levels),
        )

    def _rows(self, rng, n_rows=5, width=200):
        return np.cumsum(rng.uniform(0.0, 0.05, (n_rows, width)), axis=1)

    def test_batch_token_bucket_matches_scalar_rows(self):
        rng = np.random.default_rng(3)
        rows = self._rows(rng)
        t_grid = 0.01 * np.arange(rows.shape[1])
        sigmas = rng.uniform(0.01, 0.5, rows.shape[0])
        rhos = rng.uniform(0.0, 2.0, rows.shape[0])
        batch = batch_fluid_token_bucket(rows, t_grid, sigmas, rhos)
        for i in range(rows.shape[0]):
            assert np.array_equal(
                batch[i], fluid_token_bucket(rows[i], t_grid, sigmas[i], rhos[i])
            )

    def test_batch_work_conserving_matches_scalar_rows(self):
        rng = np.random.default_rng(4)
        rows = self._rows(rng)
        service = np.cumsum(rng.uniform(0.0, 0.06, rows.shape), axis=1)
        service[:, 0] = 0.0
        batch = batch_fluid_work_conserving(rows, service)
        for i in range(rows.shape[0]):
            assert np.array_equal(
                batch[i], fluid_work_conserving(rows[i], service[i])
            )

    def test_batch_on_time_matches_scalar_rows(self):
        t_grid = 0.01 * np.arange(300)
        working = np.array([0.05, 0.2, 0.31])
        period = np.array([0.11, 0.2, 0.5])
        offset = np.array([0.0, 0.07, 1.3])
        batch = batch_fluid_on_time(t_grid, working, period, offset)
        for i in range(3):
            assert np.array_equal(
                batch[i],
                fluid_on_time(t_grid, working[i], period[i], offset[i]),
            )

    def test_batch_next_empty_matches_scalar_prefixes(self):
        """Flat-padded rows of different valid lengths: each valid
        prefix is bit-identical to the scalar kernel on that prefix --
        including an unstable row whose tail is inf."""
        rng = np.random.default_rng(6)
        dt = 0.01
        widths = [120, 200, 260]
        caps = np.array([1.0, 2.0, 0.5])
        n_max = max(widths)
        t_grid = dt * np.arange(n_max)
        agg = np.empty((3, n_max))
        rows = []
        for i, w in enumerate(widths):
            row = np.cumsum(rng.uniform(0.0, caps[i] * dt * 1.2, w))
            # Drain the tail so stable rows end empty (except row 2,
            # kept overloaded to exercise the inf tail).
            if i != 2:
                row[w // 2:] = row[w // 2]
            rows.append(row)
            agg[i, :w] = row
            agg[i, w:] = row[-1]
        n_valid = np.array([w - 1 for w in widths])
        batch = batch_fluid_next_empty(t_grid, agg, caps, n_valid)
        for i, w in enumerate(widths):
            scalar = fluid_next_empty(t_grid[:w], rows[i], caps[i])
            assert np.array_equal(batch[i, :w], scalar)

    def test_primed_adversarial_worst_matches_host(self):
        rng = np.random.default_rng(12)
        traces = []
        envelopes = []
        for f in range(4):
            n = int(rng.integers(3, 40))
            times = np.sort(rng.uniform(0, 1.0, n))
            sizes = rng.uniform(1e-3, 6e-3, n)
            traces.append((times, sizes))
            envelopes.append(
                ArrivalEnvelope(float(rng.uniform(0.01, 0.1)), 0.2)
            )
        for mode in ("sigma-rho", "sigma-rho-lambda", "none"):
            host = primed_adversarial_host(
                traces, envelopes, mode, capacity=1.5, stagger_phase=0.2
            )
            worst, events = primed_adversarial_worst(
                traces, envelopes, mode, capacity=1.5, stagger_phase=0.2
            )
            expected = max(
                float(d.max()) if d.size else 0.0
                for d in host.per_flow_delays
            )
            assert worst == max(expected, 0.0)
            assert events == host.batch_events

    def test_primed_worst_dedupe_cache_is_invisible(self):
        times = np.sort(np.random.default_rng(2).uniform(0, 1.0, 30))
        sizes = np.full(30, 4e-3)
        traces = [(times, sizes)] * 3
        envelopes = [ArrivalEnvelope(0.05, 0.3)] * 3
        keys = [(id(times), 0.05, 0.3)] * 3
        plain = primed_adversarial_worst(traces, envelopes, "sigma-rho")
        cached = primed_adversarial_worst(
            traces, envelopes, "sigma-rho", dep_cache={}, cache_keys=keys
        )
        assert plain == cached


# ----------------------------------------------------------------------
# Group-aware chunk planning
# ----------------------------------------------------------------------
class TestGroupAwarePlanning:
    def test_spec_group_key_separates_structures(self):
        host = Scenario(
            name="h", kinds=("cbr",) * 3, utilization=0.5, mode="sigma-rho"
        )
        assert spec_group_key(host) == spec_group_key(
            dataclasses.replace(host, name="h2", utilization=0.9)
        )
        for variant in (
            dataclasses.replace(host, topology="chain", hops=2),
            dataclasses.replace(host, backend="des"),
            dataclasses.replace(host, mode="sigma-rho-lambda"),
            dataclasses.replace(host, discipline="fifo"),
            dataclasses.replace(host, dt=0.004),
        ):
            assert spec_group_key(variant) != spec_group_key(host)

    def test_plan_chunks_groups_is_exact_cover_of_coherent_blocks(self):
        rng = np.random.default_rng(8)
        n = 40
        costs = rng.uniform(0.5, 5.0, n)
        groups = [("g", int(i)) for i in rng.integers(0, 4, n)]
        chunks = plan_chunks(costs, 4, groups=groups)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(n))  # exact cover, no dupes
        for chunk in chunks:
            assert len({groups[i] for i in chunk}) == 1  # group-coherent

    def test_plan_chunks_without_groups_unchanged(self):
        costs = [3.0, 1.0, 2.0, 5.0]
        assert plan_chunks(costs, 2) == plan_chunks(costs, 2, groups=None)


# ----------------------------------------------------------------------
# Satellite regressions: cost features, stability band, empty shards
# ----------------------------------------------------------------------
class TestCostFeatureBackend:
    def test_record_eff_backend_wins_over_requested(self):
        rec = {
            "backend": "des",
            "eff_backend": "fluid",
            "horizon": 2.0,
            "kinds": ["cbr"] * 3,
        }
        as_fluid = dict(rec, backend="fluid")
        assert _spec_features(rec) == _spec_features(as_fluid)
        label, _ = _spec_features(rec)
        assert label.startswith("fluid")

    def test_spec_without_eff_backend_uses_requested(self):
        sc = Scenario(
            name="c", kinds=("cbr",) * 3, utilization=0.5, backend="des"
        )
        label, _ = _spec_features(sc)
        assert label.startswith("des")


class TestStabilityBoundary:
    """Batch and scalar bounds agree bit-for-bit at the critical load.

    Dyadic sigma/rho values keep every sum exact, so ``np.nansum`` and
    Python ``sum`` cannot diverge: the only way batch and scalar could
    disagree is a tolerance-band mismatch -- the regression under test.
    """

    dyadic_rho = st.integers(1, 48).map(lambda i: i / 64.0)
    dyadic_sigma = st.integers(1, 128).map(lambda i: i / 32.0)

    @given(
        st.lists(
            st.tuples(dyadic_sigma, dyadic_rho), min_size=1, max_size=4
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_remark1_batch_equals_scalar(self, flows):
        from repro.calculus.mux import mux_delay_bound_heterogeneous
        from repro.scenarios.analytic import batch_remark1_wdb

        envs = [ArrivalEnvelope(s, r) for s, r in flows]
        sig = np.array([[s for s, _ in flows]])
        rho = np.array([[r for _, r in flows]])
        batch = float(batch_remark1_wdb(sig, rho)[0])
        scalar = mux_delay_bound_heterogeneous(envs)
        assert batch == scalar  # bitwise, including the inf cases

    @given(
        st.lists(
            st.tuples(dyadic_sigma, dyadic_rho), min_size=2, max_size=4
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_theorem1_batch_agrees_on_finiteness(self, flows):
        from repro.core.delay_bounds import theorem1_wdb_heterogeneous
        from repro.scenarios.analytic import batch_theorem1_wdb

        sig = np.array([[s for s, _ in flows]])
        rho = np.array([[r for _, r in flows]])
        batch = float(batch_theorem1_wdb(sig, rho)[0])
        scalar = theorem1_wdb_heterogeneous(
            [s for s, _ in flows], [r for _, r in flows]
        )
        assert np.isfinite(batch) == np.isfinite(scalar)
        if np.isfinite(batch):
            assert batch == pytest.approx(scalar, rel=1e-12, abs=0.0)

    def test_exact_critical_load_is_finite_in_both(self):
        from repro.calculus.mux import mux_delay_bound_heterogeneous
        from repro.scenarios.analytic import batch_remark1_wdb

        # sum(rho) == capacity exactly: the tolerance band keeps both
        # finite and equal (priced at the tolerance-wide slack).
        envs = [
            ArrivalEnvelope(0.5, 0.5),
            ArrivalEnvelope(0.25, 0.25),
            ArrivalEnvelope(0.25, 0.25),
        ]
        sig = np.array([[0.5, 0.25, 0.25]])
        rho = np.array([[0.5, 0.25, 0.25]])
        batch = float(batch_remark1_wdb(sig, rho)[0])
        scalar = mux_delay_bound_heterogeneous(envs)
        assert np.isfinite(batch) and np.isfinite(scalar)
        assert batch == scalar
        # One ulp past the band: both go unbounded.
        rho_over = rho + np.array([[2e-12, 0.0, 0.0]])
        assert np.isinf(float(batch_remark1_wdb(sig, rho_over)[0]))
        envs_over = [ArrivalEnvelope(0.5, 0.5 + 2e-12), *envs[1:]]
        assert np.isinf(mux_delay_bound_heterogeneous(envs_over))


class TestEmptyShards:
    def test_run_batch_empty_input_is_clean(self):
        report = run_batch([])
        assert report.outcomes == ()
        assert report.elapsed == 0.0

    def test_cli_empty_shard_exits_cleanly(self, tmp_path, capsys):
        """--shard with more shards than cells: the empty shards still
        write a valid summary and exit 0."""
        from repro.experiments.cli import main

        evaluated = []
        for i in range(1, 5):
            store = tmp_path / f"s{i}"
            assert (
                main(
                    [
                        "scenarios",
                        "run",
                        "--count",
                        "1",
                        "--no-corpus",
                        "--shard",
                        f"{i}/4",
                        "--store",
                        str(store),
                    ]
                )
                == 0
            )
            summary = json.loads((store / "summary.json").read_text())
            evaluated.append(summary["cells"])
        capsys.readouterr()
        assert sorted(evaluated) == [0, 0, 0, 1]
