"""Unit conversions and normalisation conventions.

The paper normalises every end-host output link to capacity ``C = 1``
("we assume that each link in the network has a uniform available
capacity C = 1").  All regulator parameters (sigma, rho) are then
expressed as fractions of that capacity: ``rho`` is a dimensionless
utilisation in ``[0, 1]`` and ``sigma`` is an amount of data measured in
*capacity-seconds* (the data transmitted by a full link in ``sigma``
seconds).

The workload models, on the other hand, speak natural units (64 kbps
audio, 1.5 Mbps MPEG-1 video).  The helpers in this module convert
between the two worlds:

``normalize_rate(rate_bps, capacity_bps)``
    maps a bit rate to the dimensionless ``rho`` used by the theory.

``normalized_to_rate(rho, capacity_bps)``
    maps back to bits per second.

Everything is plain float arithmetic; the functions exist to make unit
handling explicit and greppable rather than to hide complexity.
"""

from __future__ import annotations

BITS_PER_BYTE = 8
#: One kilobit per second, in bits per second.
KBPS = 1_000.0
#: One megabit per second, in bits per second.
MBPS = 1_000_000.0

#: Audio stream rate used throughout the paper's evaluation (64 kbps).
AUDIO_RATE_BPS = 64 * KBPS
#: Video stream rate used throughout the paper's evaluation (1.5 Mbps MPEG-1).
VIDEO_RATE_BPS = 1.5 * MBPS


def megabits_to_bits(megabits: float) -> float:
    """Convert megabits to bits."""
    return float(megabits) * MBPS


def bits_to_megabits(bits: float) -> float:
    """Convert bits to megabits."""
    return float(bits) / MBPS


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * 1e3


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(ms) / 1e3


def normalize_rate(rate_bps: float, capacity_bps: float) -> float:
    """Return the dimensionless utilisation ``rho`` of ``rate_bps``.

    Parameters
    ----------
    rate_bps:
        Flow rate in bits per second.
    capacity_bps:
        Link capacity in bits per second (the ``C`` of the paper).

    Returns
    -------
    float
        ``rate_bps / capacity_bps``; the paper's ``rho`` when the link is
        normalised to ``C = 1``.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
    return float(rate_bps) / float(capacity_bps)


def normalized_to_rate(rho: float, capacity_bps: float) -> float:
    """Invert :func:`normalize_rate`."""
    if capacity_bps <= 0:
        raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
    return float(rho) * float(capacity_bps)


def aggregate_utilization(rates_bps: list[float], capacity_bps: float) -> float:
    """Aggregate utilisation ``u = sum(rho_i)`` of a set of flows.

    This is the x-axis of the paper's Figures 4 and 6 ("average input
    rate of 3 flows" times the flow count; see DESIGN.md section 1 for
    the unit convention).
    """
    return sum(normalize_rate(r, capacity_bps) for r in rates_bps)
