"""Rate threshold rho* (Theorems 3 and 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import (
    control_range,
    control_range_heterogeneous_limit,
    control_range_homogeneous_limit,
    heterogeneous_threshold,
    heterogeneous_threshold_asymptotic,
    heterogeneous_threshold_quadratic,
    homogeneous_threshold,
    homogeneous_threshold_asymptotic,
)


class TestHomogeneous:
    def test_threshold_inside_stability_region(self):
        for k in (2, 3, 5, 10):
            rho = homogeneous_threshold(k)
            assert 0 < rho < 1 / k

    def test_aggregate_converges_to_paper_value(self):
        """The paper's 'rho* = 0.73 C' (Theorem 4 / contributions)."""
        assert homogeneous_threshold(1000, aggregate=True) == pytest.approx(
            math.sqrt(3) - 1, abs=1e-3
        )

    def test_crossing_property(self):
        """At rho < rho* the lambda-regulator bound is larger; above, smaller."""
        k = 4
        rho_star = homogeneous_threshold(k)

        def g1(rho):
            return k / (1 - rho) + 2 / (rho * (1 - rho))

        def g2(rho):
            return k / (1 - k * rho)

        below, above = rho_star * 0.9, min(rho_star * 1.1, 1 / k * 0.999)
        assert g1(below) > g2(below)
        assert g1(above) < g2(above)
        assert g1(rho_star) == pytest.approx(g2(rho_star), rel=1e-9)

    def test_capacity_scaling(self):
        assert homogeneous_threshold(3, capacity=2.0) == pytest.approx(
            2.0 * homogeneous_threshold(3)
        )

    def test_k_below_2_rejected(self):
        with pytest.raises(ValueError):
            homogeneous_threshold(1)
        with pytest.raises(TypeError):
            homogeneous_threshold(3.0)

    def test_asymptotic_matches_exact_for_large_k(self):
        k = 500
        assert homogeneous_threshold(k) == pytest.approx(
            homogeneous_threshold_asymptotic(k), rel=1e-2
        )


class TestHeterogeneous:
    def test_quadratic_matches_exact_crossing(self):
        """The paper's closed form solves exactly g1 = g2 (K >= 3)."""
        for k in (3, 5, 10, 50):
            assert heterogeneous_threshold_quadratic(k) == pytest.approx(
                heterogeneous_threshold(k), rel=1e-9
            )

    def test_k2_fallback(self):
        # At K=2 the quadratic degenerates; the function must still give
        # a threshold inside (0, 1/2).
        rho = heterogeneous_threshold_quadratic(2)
        assert 0 < rho < 0.5
        assert rho == pytest.approx(heterogeneous_threshold(2))

    def test_aggregate_converges_to_paper_value(self):
        """The paper's 'rho* = 0.79 C' (Theorem 3 / contributions)."""
        assert heterogeneous_threshold(1000, aggregate=True) == pytest.approx(
            (math.sqrt(21) - 3) / 2, abs=1e-3
        )

    def test_heterogeneous_above_homogeneous(self):
        """The extra 1/rho term pushes the crossing to higher rates."""
        for k in (3, 5, 10):
            assert heterogeneous_threshold(k) > homogeneous_threshold(k)

    def test_asymptotic(self):
        k = 500
        assert heterogeneous_threshold(k) == pytest.approx(
            heterogeneous_threshold_asymptotic(k), rel=1e-2
        )


class TestControlRanges:
    def test_limits_match_paper_constants(self):
        assert control_range_homogeneous_limit() == pytest.approx(
            2 - math.sqrt(3)
        )  # ~ 0.27
        assert control_range_heterogeneous_limit() == pytest.approx(
            (5 - math.sqrt(21)) / 2
        )  # ~ 0.21

    def test_finite_k_ranges_converge(self):
        hom = control_range(200, heterogeneous=False)
        het = control_range(200, heterogeneous=True)
        assert hom == pytest.approx(2 - math.sqrt(3), abs=5e-3)
        assert het == pytest.approx((5 - math.sqrt(21)) / 2, abs=5e-3)

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_threshold_always_strictly_inside(self, k):
        for fn in (homogeneous_threshold, heterogeneous_threshold):
            rho = fn(k)
            assert 0.0 < rho < 1.0 / k
