#!/usr/bin/env python3
"""The priority-extended (sigma, rho, lambda, w) regulator in action.

The paper's conclusion proposes extending the vacation regulator to
"recognize and process flows with different priorities".  This example
runs the implemented extension: a host carries three equal-rate flows,
but flow 0 (say, the live-auction video of the paper's motivating
scenarios) is granted priority weight w.  Its working period is split
into w staggered sub-windows, shrinking its worst-case blocked interval
while leaving every flow's throughput untouched.

Run:  python examples/priority_flows.py
"""

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.priority import (
    build_priority_stagger_plan,
    fluid_priority_vacation_regulator,
    priority_delay_bound,
)
from repro.simulation.flow import VBRVideoSource
from repro.utils.piecewise import PiecewiseLinearCurve

K = 3
RHO = 0.3          # each flow at 30% -> aggregate 0.9: heavy load
HORIZON = 12.0
DT = 1e-3


def main() -> None:
    stream = VBRVideoSource(RHO).generate(HORIZON, rng=7).fragment(0.002)
    sigma = max(stream.empirical_sigma(RHO), 1e-9)
    flows = [ArrivalEnvelope(sigma, RHO)] * K
    total = HORIZON + 30.0
    n = int(total / DT)
    t = DT * np.arange(n + 1)
    arr = np.concatenate(([0.0], np.cumsum(stream.binned_arrivals(DT, total))))

    print(f"{K} flows at rho={RHO} (aggregate 0.9), sigma={sigma:.4f}")
    print(f"\n{'weight w':>8s}  {'sub-windows':>11s}  {'measured delay':>14s}  "
          f"{'schedule bound':>14s}")
    for w in (1, 2, 3, 4):
        plan = build_priority_stagger_plan(flows, [w, 1, 1])
        out = fluid_priority_vacation_regulator(arr, t, plan, 0)
        a = PiecewiseLinearCurve(t, arr)
        d = PiecewiseLinearCurve(t, np.minimum(out, arr[-1]))
        measured = a.max_horizontal_deviation(d)
        bound = priority_delay_bound(plan, 0)
        print(f"{w:8d}  {len(plan.sub_offsets[0]):11d}  "
              f"{measured:14.3f}  {bound:14.3f}")
    print("\nhigher weight -> shorter blocked intervals -> smaller "
          "worst-case delay, at unchanged throughput share.")


if __name__ == "__main__":
    main()
