"""Property-based tests of the fluid kernels (hypothesis).

Each property is a conservation/ordering law that must hold for *every*
input, not just the calibrated workloads:

* work-conserving server: departures bounded by arrivals and by the
  service, monotone, and exactly conserving once drained;
* token bucket: output conformant to its envelope, never creating data;
* vacation regulator: sustains exactly rho in the long run;
* FIFO MUX: per-flow shares sum to the aggregate departure;
* adversarial measurement dominates FIFO on identical input;
* regulated systems never beat the unregulated MUX on conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.flow import PacketTrace
from repro.simulation.fluid import (
    fluid_mux,
    fluid_next_empty,
    fluid_token_bucket,
    fluid_vacation_regulator,
    fluid_work_conserving,
    simulate_fluid_host,
)

DT = 2e-3


@st.composite
def arrival_arrays(draw, horizon_bins=2000):
    """Random bursty cumulative arrival arrays on a fixed grid."""
    n_bursts = draw(st.integers(min_value=1, max_value=12))
    bins = np.zeros(horizon_bins)
    for _ in range(n_bursts):
        start = draw(st.integers(min_value=0, max_value=horizon_bins - 2))
        length = draw(st.integers(min_value=1, max_value=200))
        rate = draw(st.floats(min_value=0.05, max_value=1.5))
        end = min(start + length, horizon_bins)
        bins[start:end] += rate * DT
    t = DT * np.arange(horizon_bins + 1)
    cum = np.concatenate(([0.0], np.cumsum(bins)))
    return t, cum


@given(arrival_arrays(), st.floats(min_value=0.2, max_value=2.0))
@settings(max_examples=60, deadline=None)
def test_work_conserving_laws(data, capacity):
    t, arr = data
    dep = fluid_work_conserving(arr, capacity * t)
    assert np.all(dep <= arr + 1e-12)                 # causality
    assert np.all(np.diff(dep) >= -1e-12)             # monotone
    assert np.all(np.diff(dep) <= capacity * DT + 1e-12)  # rate-limited
    # Work conservation: whenever backlogged, the server runs at C.
    backlog = arr - dep
    busy = backlog[:-1] > capacity * DT
    served = np.diff(dep)
    assert np.all(served[busy] >= capacity * DT - 1e-9)


@given(
    arrival_arrays(),
    st.floats(min_value=0.01, max_value=0.5),
    st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=60, deadline=None)
def test_token_bucket_output_conforms(data, sigma, rho):
    t, arr = data
    out = fluid_token_bucket(arr, t, sigma, rho)
    assert np.all(out <= arr + 1e-12)
    g = out - rho * t
    sigma_emp = float((g - np.minimum.accumulate(g)).max())
    assert sigma_emp <= sigma + 1e-9


@given(
    arrival_arrays(),
    st.floats(min_value=0.02, max_value=0.3),
    st.floats(min_value=0.1, max_value=0.45),
)
@settings(max_examples=40, deadline=None)
def test_vacation_regulator_conserves_and_shapes(data, sigma, rho):
    t, arr = data
    reg = SigmaRhoLambdaRegulator(sigma, rho)
    out = fluid_vacation_regulator(arr, t, reg)
    assert np.all(out <= arr + 1e-12)
    assert np.all(np.diff(out) >= -1e-12)
    # Output in any window of one period never exceeds W * C + slack:
    # the regulator can serve at most its working period per cycle.
    period_bins = max(int(reg.regulator_period / DT), 1)
    if period_bins < len(out) - 1:
        window_out = out[period_bins:] - out[:-period_bins]
        limit = reg.working_period + 2 * DT
        assert np.all(window_out <= limit + 1e-9)


@given(arrival_arrays(), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_fifo_shares_sum_to_aggregate(data, k):
    t, arr = data
    # Split one arrival process into k scaled copies.
    flows = [arr * (i + 1) / (k * (k + 1) / 2) for i in range(k)]
    deps = fluid_mux(flows, t, 1.0, discipline="fifo")
    agg = fluid_work_conserving(np.sum(flows, axis=0), t)
    assert np.allclose(np.sum(deps, axis=0), agg, atol=1e-6)
    for f, d in zip(flows, deps):
        assert np.all(d <= f + 1e-9)


@given(arrival_arrays())
@settings(max_examples=40, deadline=None)
def test_next_empty_is_future_and_monotone(data):
    t, arr = data
    ne = fluid_next_empty(t, arr, 1.0)
    finite = np.isfinite(ne)
    assert np.all(ne[finite] >= t[finite] - 1e-12)
    assert np.all(np.diff(ne[finite]) >= -1e-12)


@given(
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.4, max_value=0.95),
)
@settings(max_examples=15, deadline=None)
def test_adversarial_dominates_fifo_on_hosts(seed, u):
    """The general-MUX worst case is never below the FIFO measurement."""
    from repro.simulation.flow import VBRVideoSource

    k = 3
    rho = u / k
    trace = VBRVideoSource(rho).generate(4.0, rng=seed).fragment(0.004)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * k
    traces = [trace] * k
    fifo = simulate_fluid_host(
        traces, envs, mode="sigma-rho", discipline="fifo", dt=DT
    )
    adv = simulate_fluid_host(
        traces, envs, mode="sigma-rho", discipline="adversarial", dt=DT
    )
    assert adv.worst_case_delay >= fifo.worst_case_delay - 1e-6
