"""Cost-model-driven campaign scheduling.

The ROADMAP's scheduling open item: tree/DES cells are 10-100x dearer
than fluid host cells, so uniform contiguous chunking (PR 2) leaves the
long tail of a campaign serialised behind whichever worker drew the
expensive chunk.  This module closes that gap:

:class:`CellCostModel`
    Predicts one cell's wall-clock seconds from its spec alone --
    ``(backend, members/K, hops, horizon, dt)`` -- as
    ``coefficient[backend] * workload(spec)``, where ``workload`` is
    the backend's natural size measure (grid points for the fluid
    engine, expected packet-events for the DES backends).  Default
    coefficients ship from measured campaigns;
    :meth:`CellCostModel.fit` re-derives them from any result store's
    recorded per-cell ``wall_time`` (every campaign run appends the
    features needed, so the model is refittable from real data).

:func:`plan_chunks`
    Turns per-cell cost estimates into an executor chunk plan:
    dearest-first ordering (expensive cells start immediately, cheap
    cells backfill), chunk boundaries that equalise *cost* rather than
    count, and deliberately smaller chunks for high-variance backends
    (a mispredicted DES cell strands at most a sliver of work, so idle
    workers steal the tail naturally).

The plan changes **scheduling only**: results are returned in payload
order and every cell's RNG stream is spec-derived, so a cost-scheduled
campaign is bit-identical to a naively chunked one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "DEFAULT_COEFFICIENTS",
    "REALISE_COEFFICIENTS",
    "BACKEND_VARIANCE",
    "CellCostModel",
    "spec_group_key",
    "plan_chunks",
    "plan_leases",
    "backend_profile",
]

#: Seconds per unit of backend workload (see ``workload``), measured on
#: the reference container over the PR-3/PR-5 benchmark campaigns.
#: Absolute scale only matters relative to other backends -- scheduling
#: uses cost *ratios* -- so stale coefficients degrade gracefully.
#: The ``*_primed`` entries are *feature labels*, not spec backends:
#: cells the simulators resolve on the closed-form fast paths (batched
#: engine + adversarial discipline, PR 5) cost an order of magnitude
#: less per packet than their evented twins and are priced separately.
DEFAULT_COEFFICIENTS: dict[str, float] = {
    "fluid": 3.0e-8,          # per grid point x flow x hop
    "des": 4.0e-6,            # per expected packet x flow x hop
    "des_primed": 3.0e-7,     # per expected packet (array kernels)
    "des_legacy": 1.2e-5,
    "tree_des": 6.0e-6,       # per expected packet x flow x member
    "tree_des_primed": 4.0e-7,
    "tree_des_legacy": 1.0e-5,
}

#: Seconds per expected packet of trace realisation (seed derivation,
#: source generation, sigma measurement, envelope/fragmentation), on
#: the reference container.  ``realise`` prices the per-cell path;
#: ``realise_batched`` the cross-cell batch kernels of
#: :mod:`repro.scenarios.tracebatch`, whose per-packet cost is
#: dominated by flat array passes plus a small per-lane constant.
REALISE_COEFFICIENTS: dict[str, float] = {
    "realise": 4.0e-7,
    "realise_batched": 8.0e-8,
}

#: Fixed per-lane overhead of realisation (seconds); the batched path
#: amortises Python dispatch across lanes so its constant is smaller.
_REALISE_LANE_OVERHEAD = {"realise": 3.0e-5, "realise_batched": 6.0e-6}

#: Relative cost-prediction variance per backend family.  DES cells'
#: realised packet counts (and the vacation fit's fluid fallback) swing
#: far more than the fluid grid size, so their chunks shrink.  The
#: primed paths are straight array passes over realised packet counts,
#: so their predictions are tighter than the evented DES ones.
BACKEND_VARIANCE: dict[str, float] = {
    "fluid": 0.15,
    "des": 0.8,
    "des_primed": 0.4,
    "des_legacy": 0.8,
    "tree_des": 1.0,
    "tree_des_primed": 0.5,
    "tree_des_legacy": 1.0,
}

#: Fallbacks for unknown backends (forward compatibility).
_DEFAULT_COEFF = 1.0e-5
_DEFAULT_VARIANCE = 1.0

#: Nominal packets-per-second-of-horizon per unit rate at the default
#: MTU (1 / DEFAULT_MTU); only the relative scale matters.
_PACKETS_PER_SEC = 500.0


#: Evented-vs-array per-packet weight inside the primed workloads: the
#: tagged flow's remaining evented hosts cost roughly this many array
#: packets each.
_EVENTED_WEIGHT = 3.0


def _spec_features(spec: Any) -> tuple[str, float]:
    """``(feature label, workload)`` for one scenario spec.

    Accepts :class:`~repro.scenarios.spec.Scenario` instances or
    mapping-shaped records (store rows); unknown fields default
    conservatively.  Cells that resolve on the closed-form primed fast
    paths (PR 5) are classified under the ``*_primed`` labels: for
    store records the recorded ``primed`` execution fact decides; for
    specs it is inferred the way the simulators route
    (``backend="des"``/``"tree_des"`` + ``discipline="adversarial"`` --
    every resolved control mode is primeable).
    """
    get = (
        spec.get
        if isinstance(spec, Mapping)
        else lambda name, default=None: getattr(spec, name, default)
    )
    # Prefer the recorded execution fact over the requested backend: a
    # des cell that fell back to the fluid engine (`_des_lambda_fit`
    # returning None) records ``backend="des", eff_backend="fluid"`` and
    # must be priced as fluid -- classifying it under ``des`` would drag
    # the des coefficient down with fluid wall clocks.  Specs (no
    # ``eff_backend`` yet) keep using the requested backend.
    eff_backend = get("eff_backend", None)
    backend = str(eff_backend if eff_backend is not None else get("backend", "fluid"))
    horizon = float(get("horizon", 2.0) or 2.0)
    k = float(get("k", 0) or len(get("kinds", ()) or ()) or 2)
    hops = float(get("hops", 1) or 1)
    members = float(get("tree_members", 0) or 0)
    dt = float(get("dt", 2e-3) or 2e-3)
    primed = get("primed", None)
    discipline = get("discipline", None)
    sub = get("spec", None)
    if isinstance(sub, Mapping) and discipline is None:
        discipline = sub.get("discipline")
    if primed is None:
        primed = backend in ("des", "tree_des") and discipline == "adversarial"
    if members > 0:
        # Tree specs carry hops=1; the realised critical path is about
        # the DSCT height (Lemma 2) -- use it as the hop estimate.
        hops = max(hops, float(np.log2(max(members, 2.0))) + 1.0)
    if backend == "fluid":
        # Grid points x flows x hops: the vectorised kernels are O(n)
        # in the (horizon + drain margin) / dt grid.
        return backend, (3.0 * horizon / dt) * k * hops
    packets = horizon * _PACKETS_PER_SEC * k
    if backend.startswith("tree_des"):
        if primed and backend == "tree_des":
            # Cross traffic is one array pass per member; only the
            # tagged flow (1/k of the packets) stays event-driven.
            per_flow = horizon * _PACKETS_PER_SEC
            workload = per_flow * (k + _EVENTED_WEIGHT * max(members, 4.0))
            return "tree_des_primed", workload
        # Every member runs the full pipeline for all K flows.
        return backend, packets * max(members, 4.0)
    if primed and backend == "des":
        # Hop 0 (all K flows) is one array pass; later hops carry only
        # the tagged flow, evented.
        per_flow = horizon * _PACKETS_PER_SEC
        workload = per_flow * (k + _EVENTED_WEIGHT * max(hops - 1.0, 0.0))
        return "des_primed", workload
    return backend, packets * hops


@dataclass(frozen=True)
class CellCostModel:
    """Per-backend linear cost model ``cost = coeff[backend] * workload``."""

    coefficients: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COEFFICIENTS)
    )
    variance: Mapping[str, float] = field(
        default_factory=lambda: dict(BACKEND_VARIANCE)
    )

    def estimate(self, spec: Any) -> float:
        """Predicted wall-clock seconds for one cell."""
        backend, workload = _spec_features(spec)
        return self.coefficients.get(backend, _DEFAULT_COEFF) * workload

    def estimate_many(self, specs: Sequence[Any]) -> np.ndarray:
        return np.array([self.estimate(sc) for sc in specs], dtype=np.float64)

    def relative_variance(self, spec: Any) -> float:
        backend, _ = _spec_features(spec)
        return self.variance.get(backend, _DEFAULT_VARIANCE)

    def estimate_realise(
        self, specs: Sequence[Any], *, grouped: bool = False
    ) -> float:
        """Predicted wall-clock seconds to realise ``specs``' traces.

        Prices the realisation stage alone (trace synthesis, empirical
        sigma, envelopes, fragmentation) as ``coeff * expected packets
        + lane overhead``, summed over all flows of all cells.
        ``grouped=True`` uses the batched-kernel coefficients
        (:mod:`repro.scenarios.tracebatch`); the grouped evaluator
        records this prediction next to the measured batch seconds in
        its grouping summary, so realisation-cost calibration is
        observable in ``scenarios report``.
        """
        label = "realise_batched" if grouped else "realise"
        coeff = self.coefficients.get(label, REALISE_COEFFICIENTS[label])
        per_lane = _REALISE_LANE_OVERHEAD[label]
        total = 0.0
        for spec in specs:
            get = (
                spec.get
                if isinstance(spec, Mapping)
                else lambda name, default=None: getattr(spec, name, default)
            )
            horizon = float(get("horizon", 2.0) or 2.0)
            k = float(get("k", 0) or len(get("kinds", ()) or ()) or 2)
            total += k * (coeff * horizon * _PACKETS_PER_SEC + per_lane)
        return total

    @classmethod
    def fit(
        cls,
        records: Iterable[Mapping[str, Any]],
        *,
        base: Optional["CellCostModel"] = None,
        report: Optional[dict] = None,
    ) -> "CellCostModel":
        """Refit coefficients from store records (recorded wall clocks).

        Every campaign record carries ``wall_time`` plus the feature
        fields (``backend``/``eff_backend``, ``k``, ``hops``,
        ``tree_members``, ``horizon``, ``dt``), so the model can be
        re-derived from any real campaign.  Per backend the coefficient
        is the median of ``wall_time / workload`` -- robust to the odd
        cold-start or GC outlier -- and backends absent from the data
        keep their prior coefficient.

        Degenerate refits are guarded rather than propagated: an empty
        store, records with missing/zero/non-finite wall clocks or
        workloads (the ratio model's analogue of singular or constant
        feature columns), and samples whose median would be
        non-positive or non-finite all fall back to the prior
        coefficient -- a refit can never poison the scheduler with NaN
        or zero costs.

        ``report`` (optional, a mutable mapping) receives the fit
        ledger so the guards are observable rather than silent:
        ``records`` seen, ``accepted`` samples, ``dropped`` total, a
        per-reason ``dropped_reasons`` tally (``missing-wall`` /
        ``bad-wall`` / ``bad-features`` / ``bad-workload``), and per
        backend ``accepted``/``refit``/``rejected-median`` under
        ``backends``.
        """
        prior = base if base is not None else cls()
        samples: dict[str, list[float]] = {}
        seen = 0
        dropped: dict[str, int] = {}

        def _drop(reason: str) -> None:
            dropped[reason] = dropped.get(reason, 0) + 1

        for rec in records:
            seen += 1
            wall = rec.get("wall_time") if isinstance(rec, Mapping) else None
            if not isinstance(wall, (int, float)):
                _drop("missing-wall")
                continue
            wall = float(wall)
            if not np.isfinite(wall) or wall <= 0:
                _drop("bad-wall")
                continue
            try:
                backend, workload = _spec_features(rec)
            except (TypeError, ValueError):
                _drop("bad-features")  # malformed fields: unusable record
                continue
            if not np.isfinite(workload) or workload <= 0:
                _drop("bad-workload")
                continue
            samples.setdefault(backend, []).append(wall / workload)
        coeffs = dict(prior.coefficients)
        backends: dict[str, dict] = {}
        for backend, ratios in samples.items():
            coeff = float(np.median(ratios))
            refit = bool(np.isfinite(coeff) and coeff > 0)
            if refit:
                coeffs[backend] = coeff
            backends[backend] = {
                "accepted": len(ratios),
                "refit": refit,
                "coefficient": coeff if refit else prior.coefficients.get(
                    backend, _DEFAULT_COEFF
                ),
            }
        if report is not None:
            report.update(
                records=seen,
                accepted=sum(len(r) for r in samples.values()),
                dropped=sum(dropped.values()),
                dropped_reasons=dict(sorted(dropped.items())),
                backends=backends,
            )
        return cls(coefficients=coeffs, variance=dict(prior.variance))


def spec_group_key(spec: Any) -> tuple:
    """Structural SoA-group key of a scenario *spec* (no realisation).

    The scheduling-layer twin of ``repro.scenarios.cellmatrix.group_key``:
    that one keys *realised* cells (it knows the effective backend and
    mode after fallbacks resolve); this one keys raw specs on the facts
    available before realisation -- backend, discipline, topology, mode
    shape, grid resolution.  Cells sharing a spec key land in the same
    realised group unless a per-cell fallback splits them, so chunking
    parallel submissions by this key keeps grouped-eligible cells
    travelling together.
    """
    return (
        str(getattr(spec, "backend", "fluid")),
        str(getattr(spec, "discipline", "priority")),
        str(getattr(spec, "topology", "host")),
        str(getattr(spec, "mode", "adaptive")),
        float(getattr(spec, "dt", 0.0)),
    )


def plan_chunks(
    costs: Sequence[float],
    jobs: int,
    *,
    variances: Optional[Sequence[float]] = None,
    chunks_per_worker: int = 4,
    max_chunk: int = 16,
    groups: Optional[Sequence] = None,
) -> list[list[int]]:
    """Cost-aware executor chunk plan over payload indices.

    Orders cells dearest-first, then cuts chunks that target an equal
    *cost* share (``total / (jobs * chunks_per_worker)``) instead of an
    equal count.  A chunk's size is additionally capped by the inverse
    of its cells' predicted cost variance: high-variance (DES) cells
    travel in chunks of one or two, so a misprediction strands at most
    one cell's tail and idle workers steal the rest naturally.

    ``groups`` (optional, one hashable key per cell -- see
    :func:`spec_group_key`) makes chunks group-coherent: cells are
    blocked by key before chunking, blocks are ordered by their
    dearest cell, and no chunk spans two blocks -- so a worker that
    batch-evaluates its chunk sees one SoA group per chunk.

    Every index appears in exactly one chunk; an empty ``costs`` yields
    an empty plan.  Scheduling-only: the executor still returns results
    in payload order.
    """
    n = len(costs)
    if n == 0:
        return []
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    costs_arr = np.asarray(costs, dtype=np.float64)
    if np.any(costs_arr < 0):
        raise ValueError("costs must be >= 0")
    if variances is None:
        var_arr = np.zeros(n)
    else:
        if len(variances) != n:
            raise ValueError("one variance per cost is required")
        var_arr = np.asarray(variances, dtype=np.float64)
    order = np.argsort(-costs_arr, kind="stable")
    if groups is not None:
        if len(groups) != n:
            raise ValueError("one group key per cost is required")
        # Stable block-by-key: blocks keep dearest-first order inside,
        # and are themselves ordered by their dearest member.
        blocks: dict = {}
        for idx in order:
            blocks.setdefault(groups[int(idx)], []).append(idx)
        order = [i for block in blocks.values() for i in block]
        boundaries = set()
        pos = 0
        for block in blocks.values():
            pos += len(block)
            boundaries.add(pos)
    else:
        boundaries = None
    target = float(costs_arr.sum()) / max(1, jobs * chunks_per_worker)
    if target <= 0.0:
        target = float("inf")  # all-zero costs: fall back to count caps
    plan: list[list[int]] = []
    chunk: list[int] = []
    chunk_cost = 0.0
    chunk_cap = max_chunk
    for pos, idx in enumerate(order):
        i = int(idx)
        # High-variance cells shrink the cap for the chunk they join.
        cap = max(1, int(round(max_chunk / (1.0 + 4.0 * float(var_arr[i])))))
        chunk_cap = min(chunk_cap, cap)
        chunk.append(i)
        chunk_cost += float(costs_arr[i])
        at_boundary = boundaries is not None and (pos + 1) in boundaries
        if chunk_cost >= target or len(chunk) >= chunk_cap or at_boundary:
            plan.append(chunk)
            chunk, chunk_cost, chunk_cap = [], 0.0, max_chunk
    if chunk:
        plan.append(chunk)
    return plan


def plan_leases(
    costs: Sequence[float],
    workers: int,
    *,
    max_cells: int = 16,
    leases_per_worker: int = 4,
) -> list[list[int]]:
    """Cost-sized lease plan over cell indices for the coordinator.

    The distributed twin of :func:`plan_chunks`, shaped for leases that
    cross process (and host) boundaries: cells are ordered dearest
    first, and each lease targets the *remaining* cost divided by
    ``workers * leases_per_worker`` -- a guided self-scheduling decay,
    so early leases carry the expensive head in big cost bites while
    leases shrink toward the tail and the final stragglers travel alone.
    A dead worker near the end of a campaign therefore strands at most
    a sliver of work for the reclaim path to steal.

    Every index appears in exactly one lease; an empty ``costs`` yields
    an empty plan.  Scheduling-only, like every cost-model consumer:
    leases change which worker runs a cell, never its seed or verdict.
    """
    n = len(costs)
    if n == 0:
        return []
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if max_cells < 1:
        raise ValueError(f"max_cells must be >= 1, got {max_cells}")
    costs_arr = np.asarray(costs, dtype=np.float64)
    if np.any(costs_arr < 0):
        raise ValueError("costs must be >= 0")
    order = np.argsort(-costs_arr, kind="stable")
    remaining = float(costs_arr.sum())
    denom = max(1, workers * leases_per_worker)
    plan: list[list[int]] = []
    lease: list[int] = []
    lease_cost = 0.0
    target = remaining / denom if remaining > 0 else float("inf")
    for idx in order:
        i = int(idx)
        lease.append(i)
        lease_cost += float(costs_arr[i])
        if lease_cost >= target or len(lease) >= max_cells:
            plan.append(lease)
            remaining = max(0.0, remaining - lease_cost)
            target = remaining / denom if remaining > 0 else float("inf")
            lease, lease_cost = [], 0.0
    if lease:
        plan.append(lease)
    return plan


def backend_profile(
    records: Iterable[Mapping[str, Any]]
) -> list[dict[str, Any]]:
    """Per-backend cell-cost breakdown from store records.

    Returns one row per effective backend, sorted by total wall time
    descending: cell count, total/mean/max wall seconds, and share of
    the campaign's total -- the data behind ``scenarios run --profile``.
    """
    groups: dict[str, list[float]] = {}
    for rec in records:
        if not isinstance(rec, Mapping):
            continue
        backend = str(rec.get("eff_backend") or rec.get("backend") or "?")
        wall = rec.get("wall_time")
        if isinstance(wall, (int, float)) and wall >= 0:
            groups.setdefault(backend, []).append(float(wall))
    total = sum(sum(v) for v in groups.values())
    rows = []
    for backend, walls in groups.items():
        sub = sum(walls)
        rows.append(
            {
                "backend": backend,
                "cells": len(walls),
                "wall_total": sub,
                "wall_mean": sub / len(walls),
                "wall_max": max(walls),
                "share": sub / total if total > 0 else 0.0,
            }
        )
    rows.sort(key=lambda r: -r["wall_total"])
    return rows
