"""Tables I-III: multicast tree layer numbers vs average input rate.

Paper criteria: the capacity-aware DSCT row *grows* with the rate
(5 -> 9 in the paper) while the DSCT + (sigma, rho, lambda) row is
*constant* (6/7/6 across the three tables); the regulated height stays
within Lemma 2's bound for n = 665, k = 3 (namely 7).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.multicast_bounds import dsct_height_bound
from repro.experiments.config import TableConfig
from repro.experiments.report import render_table
from repro.experiments.trees import run_tree_table

CONFIG = TableConfig()  # full scale: 665 hosts, 13 sweep points

TABLES = {
    "1": ("3xaudio", "Table I -- homogeneous audio"),
    "2": ("3xvideo", "Table II -- homogeneous video"),
    "3": ("1video+2audio", "Table III -- heterogeneous streams"),
}


@pytest.mark.parametrize("which", ["1", "2", "3"])
def test_table(which, benchmark, artifact_report):
    mix_name, title = TABLES[which]
    res = run_once(benchmark, run_tree_table, mix_name, CONFIG)
    headers = ["scheme", *(f"{u:.2f}" for u in res.utilizations)]
    artifact_report.append(
        render_table(headers, res.rows(), title=f"== {title} ==")
    )
    # Paper shape: growth vs constancy.
    assert res.capacity_aware_grows
    assert res.regulated_constant
    # The capacity-aware tree deepens by at least 2 layers over the sweep.
    assert res.capacity_aware_heights[-1] >= res.capacity_aware_heights[0] + 2
    # Lemma 2 bounds the regulated height (+1 grace for the domain graft).
    bound = dsct_height_bound(CONFIG.n_hosts, CONFIG.cluster_k)
    assert all(h <= bound + 1 for h in res.regulated_heights)
    # At the lightest rate the capacity-aware tree is no taller than the
    # regulated one +2 (paper: it is in fact shallower).
    assert res.capacity_aware_heights[0] <= res.regulated_heights[0] + 2
