"""Proximity clustering shared by DSCT and NICE.

Both protocols partition hosts into clusters of size ``s in [k, 3k-1]``
("the 'intra-cluster' size s_ina is a random integer between k and
3k - 1 if the number of unassigned members is greater than 3k - 1;
otherwise, s_ina is the number of unassigned group members") and elect
a *core* per cluster that represents it in the next layer up.

The clustering is greedy nearest-neighbour on an RTT matrix: repeatedly
seed a cluster with an unassigned host and absorb its closest
unassigned neighbours -- the "closest ... end hosts are assigned into
the same" cluster rule of the paper, with the randomised size drawn per
cluster.  Cores are RTT medoids (minimum summed RTT to cluster mates),
the usual graph-centre election of hierarchical EMcast protocols.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["draw_cluster_size", "cluster_by_proximity", "elect_core"]


def draw_cluster_size(
    unassigned: int, k: int, rng: np.random.Generator,
    max_size: Optional[int] = None,
) -> int:
    """Draw one cluster size per the paper's rule.

    Random integer in ``[k, 3k-1]`` while more than ``3k-1`` hosts remain,
    otherwise all remaining hosts.  ``max_size`` optionally caps the draw
    (capacity-aware variants bound the core's fan-out).
    """
    if k < 2:
        raise ValueError(f"cluster size base k must be >= 2, got {k}")
    if unassigned <= 0:
        raise ValueError("no unassigned hosts to cluster")
    hi = 3 * k - 1
    if unassigned <= hi:
        size = unassigned
    else:
        size = int(rng.integers(k, hi + 1))
    if max_size is not None:
        size = max(2, min(size, max_size)) if unassigned > 1 else 1
        size = min(size, unassigned)
    return size


def cluster_by_proximity(
    members: Sequence[int],
    rtt: np.ndarray,
    k: int,
    rng: RandomSource = None,
    *,
    max_size: Optional[int] = None,
    size_cap_per_seed=None,
    fill_to_capacity: bool = False,
) -> list[list[int]]:
    """Partition ``members`` into proximity clusters of size ``[k, 3k-1]``.

    Parameters
    ----------
    members:
        Host indices to cluster (indices into ``rtt``).
    rtt:
        Full host-to-host RTT matrix.
    k:
        Cluster size base (3 in the paper).
    max_size:
        Optional global cap on cluster sizes (capacity-aware variants).
    size_cap_per_seed:
        Optional callable ``host -> int`` giving a per-seed cap (the
        seed becomes the cluster's prospective core, so its capacity
        bounds how many mates it can serve).

    Returns
    -------
    list of clusters, each a list of host indices; the union is exactly
    ``members`` and every cluster is non-empty.
    """
    gen = ensure_rng(rng)
    remaining = list(members)
    clusters: list[list[int]] = []
    while remaining:
        # Seed with a random unassigned host (the paper's constructions
        # are incremental and order-random); absorb nearest neighbours.
        # Capacity-aware variants core clusters on hosts that still have
        # fan-out budget ("assign the direct child members for each end
        # host based on the end host output capacity"), so bias the seed
        # towards them; if none is left, fall back to any host (the
        # forced minimum-2 cluster size below keeps the layering finite).
        if size_cap_per_seed is not None and len(remaining) > 1:
            able = [i for i, m in enumerate(remaining) if size_cap_per_seed(m) >= 2]
            pool = able if able else range(len(remaining))
            seed_pos = pool[int(gen.integers(len(pool)))]
        else:
            seed_pos = int(gen.integers(len(remaining)))
        seed = remaining.pop(seed_pos)
        cap = max_size
        if size_cap_per_seed is not None:
            seed_cap = int(size_cap_per_seed(seed))
            cap = seed_cap if cap is None else min(cap, seed_cap)
        if fill_to_capacity and cap is not None:
            # Capacity-aware protocols fan out as wide as the core's
            # capacity allows ("assign the direct child members ...
            # based on the end host output capacity"), ignoring the
            # [k, 3k-1] cluster-size convention.
            size = max(2, min(cap, len(remaining) + 1)) if remaining else 1
        else:
            size = draw_cluster_size(len(remaining) + 1, k, gen, max_size=cap)
        if size <= 1 or not remaining:
            clusters.append([seed])
            continue
        rest = np.asarray(remaining, dtype=np.int64)
        order = np.argsort(rtt[seed, rest], kind="stable")
        take = [int(rest[i]) for i in order[: size - 1]]
        cluster = [seed] + take
        taken = set(take)
        remaining = [m for m in remaining if m not in taken]
        clusters.append(cluster)
    return clusters


def elect_core(
    cluster: Sequence[int], rtt: np.ndarray, prefer: Optional[int] = None
) -> int:
    """Elect the cluster core: the RTT medoid.

    ``prefer`` wins ties and, when a member of the cluster, is returned
    directly (DSCT keeps a group's source as the core of every cluster
    on its own path so the tree stays rooted at the source).
    """
    if not cluster:
        raise ValueError("cannot elect a core of an empty cluster")
    if prefer is not None and prefer in cluster:
        return prefer
    members = np.asarray(cluster, dtype=np.int64)
    sub = rtt[np.ix_(members, members)]
    return int(members[int(np.argmin(sub.sum(axis=1)))])
