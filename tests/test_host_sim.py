"""Single regulated host DES: bounds, conservation, adaptive switching."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_homogeneous,
    theorem2_wdb_homogeneous,
)
from repro.core.threshold import homogeneous_threshold
from repro.simulation.flow import AudioSource, VBRVideoSource
from repro.simulation.host_sim import simulate_regulated_host
from tests.tolerances import SOUND_ABS_DES, sound_limit


def make_scenario(u, k=3, horizon=6.0, seed=42, kind="video"):
    rho = u / k
    if kind == "video":
        src = VBRVideoSource(rho, scene_strength=0.15, scene_persistence=0.9)
    else:
        src = AudioSource(rho)
    trace = src.generate(horizon, rng=seed).fragment(0.002)
    traces = [trace] * k
    sigma = max(trace.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k
    return traces, envs, sigma, rho


class TestBounds:
    @pytest.mark.parametrize("u", [0.5, 0.8, 0.95])
    def test_sigma_rho_measured_below_remark1(self, u):
        traces, envs, sigma, rho = make_scenario(u)
        res = simulate_regulated_host(
            traces, envs, mode="sigma-rho", discipline="adversarial"
        )
        bound = remark1_wdb_homogeneous(3, sigma, rho)
        assert res.worst_case_delay <= sound_limit(bound, abs_tol=SOUND_ABS_DES)

    @pytest.mark.parametrize("u", [0.5, 0.8, 0.95])
    def test_sigma_rho_lambda_measured_below_theorem2(self, u):
        traces, envs, sigma, rho = make_scenario(u)
        res = simulate_regulated_host(
            traces, envs, mode="sigma-rho-lambda", discipline="adversarial"
        )
        bound = theorem2_wdb_homogeneous(3, sigma, rho)
        assert res.worst_case_delay <= sound_limit(bound, abs_tol=SOUND_ABS_DES)


class TestPaperShape:
    def test_lambda_regulator_wins_at_heavy_load(self):
        """The core claim: beyond the threshold the vacation regulator
        achieves the smaller measured worst-case delay."""
        traces, envs, *_ = make_scenario(0.95, horizon=10.0)
        sr = simulate_regulated_host(
            traces, envs, mode="sigma-rho", discipline="adversarial"
        )
        srl = simulate_regulated_host(
            traces, envs, mode="sigma-rho-lambda", discipline="adversarial"
        )
        assert srl.worst_case_delay < sr.worst_case_delay

    def test_sigma_rho_wins_at_light_load(self):
        traces, envs, *_ = make_scenario(0.35, horizon=10.0)
        sr = simulate_regulated_host(
            traces, envs, mode="sigma-rho", discipline="adversarial"
        )
        srl = simulate_regulated_host(
            traces, envs, mode="sigma-rho-lambda", discipline="adversarial"
        )
        assert sr.worst_case_delay < srl.worst_case_delay

    def test_sigma_rho_delay_grows_with_rate(self):
        worst = []
        for u in (0.5, 0.75, 0.95):
            traces, envs, *_ = make_scenario(u)
            res = simulate_regulated_host(
                traces, envs, mode="sigma-rho", discipline="adversarial"
            )
            worst.append(res.worst_case_delay)
        assert worst[0] < worst[1] < worst[2]


class TestMechanics:
    def test_conservation_and_counts(self):
        traces, envs, *_ = make_scenario(0.6, horizon=3.0)
        res = simulate_regulated_host(traces, envs, mode="sigma-rho")
        assert res.events > 0
        total_delivered = sum(s.count for s in res.per_flow)
        assert total_delivered == sum(len(t) for t in traces)

    def test_adaptive_mode_selects_by_threshold(self):
        rho_star = homogeneous_threshold(3)
        light, *_ = make_scenario(rho_star * 3 * 0.6)
        heavy, *_ = make_scenario(min(rho_star * 3 * 1.2, 0.99))
        _, envs_l, *_ = make_scenario(rho_star * 3 * 0.6)
        _, envs_h, *_ = make_scenario(min(rho_star * 3 * 1.2, 0.99))
        res_l = simulate_regulated_host(light, envs_l, mode="adaptive", horizon=2.0)
        res_h = simulate_regulated_host(heavy, envs_h, mode="adaptive", horizon=2.0)
        assert res_l.mode == "sigma-rho"
        assert res_h.mode == "sigma-rho-lambda"

    def test_mode_none_is_plain_mux(self):
        traces, envs, *_ = make_scenario(0.5, horizon=2.0)
        res = simulate_regulated_host(traces, envs, mode="none")
        assert res.worst_case_delay >= 0

    def test_mismatched_inputs_rejected(self):
        traces, envs, *_ = make_scenario(0.5, horizon=1.0)
        with pytest.raises(ValueError):
            simulate_regulated_host(traces[:-1], envs)
        with pytest.raises(ValueError):
            simulate_regulated_host([], [])

    def test_worst_flow_identified(self):
        traces, envs, *_ = make_scenario(0.8, horizon=3.0)
        res = simulate_regulated_host(
            traces, envs, mode="sigma-rho", discipline="priority"
        )
        wf = res.worst_flow()
        assert res.per_flow[wf].worst == res.worst_case_delay
        # With per-index priorities the last flow is served last.
        assert wf == len(traces) - 1
