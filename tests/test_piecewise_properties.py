"""Property-based tests of :mod:`repro.utils.piecewise` (hypothesis).

Random monotone breakpoint arrays -- fluid curves and packet
staircases -- against the laws the delay machinery rests on:

* deviation measures: identity curves deviate by zero, pure time shift
  yields exactly that delay, vertical shift yields exactly that backlog,
  and both measures are monotone under slowing the departure;
* sum/minimum closure: the results are valid non-decreasing curves
  agreeing pointwise with the operand arithmetic;
* staircase first passage: monotone in the level, inverse to
  evaluation, and plateau-respecting;
* min_sigma: the tightest conformant burst really is tight (conformance
  holds at it, fails just below it).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.utils.piecewise import PiecewiseLinearCurve


@st.composite
def fluid_curves(draw, max_segments=12):
    """Random continuous non-decreasing curves from (duration, rate) runs."""
    n = draw(st.integers(min_value=1, max_value=max_segments))
    durations = [
        draw(st.floats(min_value=1e-3, max_value=2.0)) for _ in range(n)
    ]
    # Segments are flat or carry a substantive slope: the deviation
    # measures' level_rtol guard under-queries departure levels by
    # ~1e-9, which a vanishing slope would amplify unboundedly.
    rates = [
        draw(st.one_of(st.just(0.0), st.floats(min_value=0.05, max_value=3.0)))
        for _ in range(n)
    ]
    start_t = draw(st.floats(min_value=0.0, max_value=1.0))
    start_v = draw(st.floats(min_value=0.0, max_value=1.0))
    return PiecewiseLinearCurve.from_segments(start_t, start_v, durations, rates)


@st.composite
def staircases(draw, max_packets=25):
    """Random packet-arrival staircases (instantaneous jumps)."""
    n = draw(st.integers(min_value=1, max_value=max_packets))
    gaps = [draw(st.floats(min_value=0.0, max_value=0.5)) for _ in range(n)]
    times = np.cumsum(gaps)
    sizes = np.array(
        [draw(st.floats(min_value=1e-3, max_value=0.5)) for _ in range(n)]
    )
    return PiecewiseLinearCurve.from_packet_arrivals(times, sizes)


any_curve = st.one_of(fluid_curves(), staircases())


# ----------------------------------------------------------------------
# Deviation measures
# ----------------------------------------------------------------------
class TestDeviations:
    @given(any_curve)
    @settings(max_examples=80, deadline=None)
    def test_self_deviation_is_zero(self, curve):
        assert curve.max_horizontal_deviation(curve) == pytest.approx(0.0, abs=1e-9)
        assert curve.max_vertical_deviation(curve) == pytest.approx(0.0, abs=1e-9)

    @given(any_curve, st.floats(min_value=1e-3, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_time_shift_is_exactly_the_delay(self, curve, delay):
        # A curve pinned at zero has no measurable levels at all.
        assume(curve.total > 1e-9)
        delayed = curve.shift(dt=delay)
        got = curve.max_horizontal_deviation(delayed)
        assert got == pytest.approx(delay, rel=1e-6, abs=1e-6)

    @given(any_curve, st.floats(min_value=1e-3, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_value_shift_is_exactly_the_backlog(self, curve, drop):
        lowered = curve.shift(dv=-drop)
        assert curve.max_vertical_deviation(lowered) == pytest.approx(
            drop, rel=1e-9, abs=1e-9
        )

    @given(any_curve, st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_departure_lateness(self, curve, d1, d2):
        """Delaying the departure curve further never shrinks either
        deviation measure."""
        near, far = sorted((d1, d2))
        dev_near = curve.max_horizontal_deviation(curve.shift(dt=near))
        dev_far = curve.max_horizontal_deviation(curve.shift(dt=far))
        assert dev_far >= dev_near - 1e-9


# ----------------------------------------------------------------------
# Sum / minimum closure (fluid curves)
# ----------------------------------------------------------------------
class TestClosure:
    @given(fluid_curves(), fluid_curves())
    @settings(max_examples=80, deadline=None)
    def test_sum_closure(self, f, g):
        s = f + g
        assert np.all(np.diff(s.values) >= -1e-9)  # still cumulative
        grid = np.union1d(f.times, g.times)
        np.testing.assert_allclose(
            s.evaluate(grid), f.evaluate(grid) + g.evaluate(grid),
            rtol=1e-9, atol=1e-9,
        )

    @given(fluid_curves(), fluid_curves())
    @settings(max_examples=80, deadline=None)
    def test_min_closure(self, f, g):
        m = f.minimum(g)
        assert np.all(np.diff(m.values) >= -1e-9)
        probe = np.union1d(m.times, np.union1d(f.times, g.times))
        np.testing.assert_allclose(
            m.evaluate(probe),
            np.minimum(f.evaluate(probe), g.evaluate(probe)),
            rtol=1e-9, atol=1e-9,
        )

    @given(staircases(), fluid_curves())
    @settings(max_examples=20, deadline=None)
    def test_staircases_rejected_by_binary_ops(self, stair, fluid):
        with pytest.raises(ValueError, match="fluid"):
            _ = stair + fluid
        with pytest.raises(ValueError, match="fluid"):
            fluid.minimum(stair)


# ----------------------------------------------------------------------
# Staircase first passage
# ----------------------------------------------------------------------
class TestFirstPassage:
    @given(staircases())
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_level(self, stair):
        levels = np.linspace(0.0, stair.total * 1.1, 64)
        passage = stair.first_passage(levels)
        finite = passage[np.isfinite(passage)]
        assert np.all(np.diff(finite) >= -1e-12)

    @given(staircases())
    @settings(max_examples=80, deadline=None)
    def test_levels_beyond_total_never_reached(self, stair):
        assert stair.first_passage(stair.total + 1e-6) == np.inf
        assert np.isfinite(stair.first_passage(stair.total))

    @given(staircases())
    @settings(max_examples=80, deadline=None)
    def test_inverse_of_evaluation(self, stair):
        """At the first-passage time the curve has reached the level."""
        levels = np.linspace(stair.total * 0.05, stair.total * 0.95, 16)
        times = stair.first_passage(levels)
        reached = stair.evaluate(times, side="right")
        assert np.all(reached >= levels - 1e-9)


# ----------------------------------------------------------------------
# min_sigma tightness
# ----------------------------------------------------------------------
class TestMinSigma:
    @given(any_curve, st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_min_sigma_is_tight(self, curve, rho):
        sigma = curve.min_sigma(rho)
        assert curve.conforms(sigma, rho)
        if sigma > 1e-6:
            assert not curve.conforms(sigma * 0.99 - 1e-9, rho, tol=1e-12)

    @given(fluid_curves())
    @settings(max_examples=60, deadline=None)
    def test_min_sigma_decreases_in_rho(self, curve):
        rhos = np.linspace(0.0, 3.0, 7)
        sigmas = [curve.min_sigma(r) for r in rhos]
        assert all(a >= b - 1e-9 for a, b in zip(sigmas, sigmas[1:]))
