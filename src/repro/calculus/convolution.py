"""Min-plus algebra on piecewise-linear curves.

The two operators of deterministic network calculus that the closed
forms in :mod:`repro.calculus.service` specialise:

* **min-plus convolution** ``(f (*) g)(t) = inf_{0<=s<=t} f(s) + g(t-s)``
  -- concatenation of servers, and the departure bound
  ``D <= A (*) beta``;
* **min-plus deconvolution** ``(f (/) g)(t) = sup_{u>=0} f(t+u) - g(u)``
  -- the output envelope ``alpha' = alpha (/) beta`` of a flow with
  arrival envelope ``alpha`` crossing a server with service curve
  ``beta``.

Curves are sampled onto a uniform grid and the operators evaluated with
vectorised scans (O(n^2) worst case with O(n) NumPy inner steps --
exact at grid points, which is all the bound arithmetic needs).  The
closed-form shortcuts remain the fast path; these general operators are
the reference they are tested against, and the tool for service curves
with no closed form (e.g. measured vacation schedules).
"""

from __future__ import annotations

import numpy as np

from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_positive

__all__ = [
    "sample_on_grid",
    "min_plus_convolve",
    "min_plus_deconvolve",
    "delay_bound_curves",
    "backlog_bound_curves",
]


def sample_on_grid(
    curve: PiecewiseLinearCurve, horizon: float, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a curve at ``n+1`` uniform points on ``[0, horizon]``."""
    check_positive(horizon, "horizon")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    t = np.linspace(0.0, horizon, n + 1)
    return t, curve.evaluate(t)


def min_plus_convolve(
    f: PiecewiseLinearCurve,
    g: PiecewiseLinearCurve,
    horizon: float,
    n: int = 1024,
) -> PiecewiseLinearCurve:
    """``(f (*) g)(t) = min_{0<=s<=t} f(s) + g(t - s)`` on a grid.

    Both curves are evaluated with their natural domain clamping; the
    result is exact at the grid points for piecewise-linear inputs when
    the grid refines both curves' breakpoints (callers pick ``n``
    accordingly).
    """
    t, fv = sample_on_grid(f, horizon, n)
    _, gv = sample_on_grid(g, horizon, n)
    out = np.full(n + 1, np.inf)
    # out[i] = min_s fv[s] + gv[i - s]; one vectorised pass per shift.
    for s in range(n + 1):
        out[s:] = np.minimum(out[s:], fv[s] + gv[: n + 1 - s])
    return PiecewiseLinearCurve(t, np.maximum.accumulate(out))


def min_plus_deconvolve(
    f: PiecewiseLinearCurve,
    g: PiecewiseLinearCurve,
    horizon: float,
    n: int = 1024,
) -> PiecewiseLinearCurve:
    """``(f (/) g)(t) = sup_{u>=0} f(t+u) - g(u)`` on a grid.

    The supremum is truncated at ``u <= horizon`` (both curves are
    eventually affine in every use here, so the supremum is attained
    early; tests check against the closed forms).
    """
    t, gv = sample_on_grid(g, horizon, n)
    # f sampled out to 2*horizon so f(t+u) is available for u <= horizon.
    t2 = np.linspace(0.0, 2 * horizon, 2 * n + 1)
    fv = f.evaluate(t2)
    out = np.full(n + 1, -np.inf)
    for u in range(n + 1):
        out = np.maximum(out, fv[u : u + n + 1] - gv[u])
    # An envelope must still be non-decreasing; enforce monotonicity
    # against grid round-off.
    out = np.maximum.accumulate(np.maximum(out, 0.0))
    return PiecewiseLinearCurve(t, out)


def delay_bound_curves(
    alpha: PiecewiseLinearCurve,
    beta: PiecewiseLinearCurve,
) -> float:
    """Worst-case delay ``h(alpha, beta)`` -- the horizontal deviation.

    The fundamental theorem of network calculus: a flow with arrival
    envelope ``alpha`` crossing a server with service curve ``beta``
    waits at most the maximal horizontal distance between the curves.
    """
    return alpha.max_horizontal_deviation(beta)


def backlog_bound_curves(
    alpha: PiecewiseLinearCurve,
    beta: PiecewiseLinearCurve,
) -> float:
    """Worst-case backlog ``v(alpha, beta)`` -- the vertical deviation."""
    return alpha.max_vertical_deviation(beta)
