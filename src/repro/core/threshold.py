"""The input rate threshold ``rho*`` (Theorems 3 and 4).

The adaptive control algorithm switches from the (sigma, rho) regulator
to the (sigma, rho, lambda) regulator when the average input rate
``rho_bar`` of the ``K`` flows entering a host crosses a threshold
``rho*``.  The threshold is the unique crossing point of the two
worst-case delay bounds:

* homogeneous flows (Theorem 4):  ``g1(rho) = K/(1-rho) + 2/(rho(1-rho))``
  (Theorem 2 with ``sigma0 = sigma``, divided by ``sigma``) versus
  ``g2(rho) = K/(1-K rho)`` (Remark 1);
* heterogeneous flows (Theorem 3): ``g1(rho) = K/(1-rho) +
  2/(rho(1-rho)) + 1/rho`` (inequality (8) of the paper, divided by
  ``sigma``) versus the same ``g2``; the paper reduces ``g1 = g2`` to the
  quadratic ``(K^2 - 2K) rho^2 + (3K + 1) rho - 3 = 0``.

Units: the functions return the *per-flow* threshold
``rho* in (0, 1/K)``.  The paper reports the *aggregate* threshold
``K rho*`` (their "``rho* = 0.73 C``" is ``K rho*`` -- consistent with
the asymptotic control ranges ``1 - K rho* -> 2 - sqrt(3) ~ 0.27`` and
``(5 - sqrt(21))/2 ~ 0.21``).  Use ``aggregate=True`` to get the
paper-style value.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.utils.validation import check_positive

__all__ = [
    "homogeneous_threshold",
    "heterogeneous_threshold",
    "heterogeneous_threshold_quadratic",
    "control_range_homogeneous_limit",
    "control_range_heterogeneous_limit",
    "homogeneous_threshold_asymptotic",
    "heterogeneous_threshold_asymptotic",
]

_BRACKET_EPS = 1e-9


def _check_k(k: int) -> int:
    if isinstance(k, bool) or not isinstance(k, int):
        raise TypeError(f"k must be an int, got {type(k).__name__}")
    if k < 2:
        raise ValueError(f"the threshold theorems require K >= 2, got {k}")
    return k


def homogeneous_threshold(
    k: int, capacity: float = 1.0, *, aggregate: bool = False
) -> float:
    """Per-flow rate threshold ``rho*`` for K homogeneous flows (Theorem 4).

    Solves ``K/(1-rho) + 2/(rho(1-rho)) = K/(1-K rho)`` on ``(0, 1/K)``.
    The equation is independent of sigma, so the threshold depends only
    on ``K`` (scaled by ``capacity``).

    Parameters
    ----------
    k:
        Number of input flows (groups joined), ``K >= 2``.
    capacity:
        Output link capacity ``C`` (1.0 under the paper's normalisation).
    aggregate:
        If true, return the aggregate threshold ``K rho*`` -- the form
        the paper quotes ("``rho* = 0.73 C``").
    """
    k = _check_k(k)
    check_positive(capacity, "capacity")

    def gap(rho: float) -> float:
        g1 = k / (1.0 - rho) + 2.0 / (rho * (1.0 - rho))
        g2 = k / (1.0 - k * rho)
        return g1 - g2

    lo, hi = _BRACKET_EPS, 1.0 / k - _BRACKET_EPS
    rho_star = brentq(gap, lo, hi, xtol=1e-14, rtol=1e-13)
    rho_star *= capacity
    return k * rho_star if aggregate else rho_star


def heterogeneous_threshold(
    k: int, capacity: float = 1.0, *, aggregate: bool = False
) -> float:
    """Per-flow rate threshold ``rho*`` for K heterogeneous flows (Theorem 3).

    Solves ``K/(1-rho) + 2/(rho(1-rho)) + 1/rho = K/(1-K rho)`` on
    ``(0, 1/K)`` -- the exact crossing of inequality (8) with Remark 1.
    Algebraically equivalent to the paper's quadratic
    ``(K^2-2K) rho^2 + (3K+1) rho - 3 = 0``
    (see :func:`heterogeneous_threshold_quadratic`).
    """
    k = _check_k(k)
    check_positive(capacity, "capacity")

    def gap(rho: float) -> float:
        g1 = k / (1.0 - rho) + 2.0 / (rho * (1.0 - rho)) + 1.0 / rho
        g2 = k / (1.0 - k * rho)
        return g1 - g2

    lo, hi = _BRACKET_EPS, 1.0 / k - _BRACKET_EPS
    rho_star = brentq(gap, lo, hi, xtol=1e-14, rtol=1e-13)
    rho_star *= capacity
    return k * rho_star if aggregate else rho_star


def heterogeneous_threshold_quadratic(
    k: int, capacity: float = 1.0, *, aggregate: bool = False
) -> float:
    """The paper's closed form for Theorem 3's threshold.

    ``rho* = [-(3K+1) + sqrt((3K+1)^2 + 12 (K^2 - 2K))] / (2 (K^2 - 2K))``.
    At ``K = 2`` the quadratic degenerates to the linear equation
    ``7 rho = 3`` -- but ``3/7 > 1/2 = 1/K``, i.e. the dropped terms
    matter there; we fall back to the exact numeric crossing, matching
    the theorem's domain ``rho* in (0, 1/K)``.
    """
    k = _check_k(k)
    check_positive(capacity, "capacity")
    a = float(k * k - 2 * k)
    b = float(3 * k + 1)
    c = -3.0
    if a == 0.0:  # K == 2
        return heterogeneous_threshold(k, capacity, aggregate=aggregate)
    disc = b * b - 4.0 * a * c
    rho_star = (-b + math.sqrt(disc)) / (2.0 * a)
    rho_star *= capacity
    return k * rho_star if aggregate else rho_star


def control_range_homogeneous_limit() -> float:
    """``lim_{K->inf} (1/K - rho*) / (1/K) = 2 - sqrt(3) ~ 0.27`` (Theorem 4 ii)."""
    return 2.0 - math.sqrt(3.0)


def control_range_heterogeneous_limit() -> float:
    """``lim_{K->inf} (1/K - rho*) / (1/K) = (5 - sqrt(21))/2 ~ 0.21`` (Theorem 3 ii)."""
    return (5.0 - math.sqrt(21.0)) / 2.0


def homogeneous_threshold_asymptotic(k: int) -> float:
    """Large-K approximation of the homogeneous per-flow threshold.

    ``rho* ~ (sqrt(3) - 1) / K`` -- the aggregate threshold tends to
    ``sqrt(3) - 1 ~ 0.732``, the paper's "``rho* = 0.73 C``".
    """
    k = _check_k(k)
    return (math.sqrt(3.0) - 1.0) / k


def heterogeneous_threshold_asymptotic(k: int) -> float:
    """Large-K approximation of the heterogeneous per-flow threshold.

    ``rho* ~ (sqrt(21) - 3) / (2K)`` (stated inside the proof of
    Theorem 5) -- the aggregate threshold tends to
    ``(sqrt(21) - 3)/2 ~ 0.791``, the paper's "``rho* = 0.79 C``".
    """
    k = _check_k(k)
    return (math.sqrt(21.0) - 3.0) / (2.0 * k)


def control_range(k: int, *, heterogeneous: bool) -> float:
    """Finite-K control range ``(1/K - rho*) / (1/K) = 1 - K rho*``.

    The fraction of the stable rate region in which the
    (sigma, rho, lambda) regulator wins (part (ii) of Theorems 3/4).
    """
    rho_star = (
        heterogeneous_threshold(k) if heterogeneous else homogeneous_threshold(k)
    )
    return 1.0 - k * rho_star
