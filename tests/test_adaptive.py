"""The Adaptive Control Algorithm (Section III)."""

import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode, StaggerPlan
from repro.core.regulator import SigmaRhoLambdaRegulator, SigmaRhoRegulator
from repro.core.threshold import heterogeneous_threshold, homogeneous_threshold


def hom_envs(k, sigma, rho):
    return [ArrivalEnvelope(sigma, rho)] * k


class TestModeSelection:
    def test_light_load_uses_sigma_rho(self):
        k = 3
        rho = homogeneous_threshold(k) * 0.5
        ctrl = AdaptiveController(hom_envs(k, 0.1, rho))
        assert ctrl.select_mode() is ControlMode.SIGMA_RHO
        regs = ctrl.build_regulators()
        assert all(isinstance(r, SigmaRhoRegulator) for r in regs)

    def test_heavy_load_uses_sigma_rho_lambda(self):
        k = 3
        rho = homogeneous_threshold(k) * 1.2
        ctrl = AdaptiveController(hom_envs(k, 0.1, rho))
        assert ctrl.select_mode() is ControlMode.SIGMA_RHO_LAMBDA
        regs = ctrl.build_regulators()
        assert all(isinstance(r, SigmaRhoLambdaRegulator) for r in regs)

    def test_switch_exactly_at_threshold(self):
        """Step 3: rho_bar in [rho*, 1/K) selects the lambda model."""
        k = 3
        rho_star = homogeneous_threshold(k)
        ctrl = AdaptiveController(hom_envs(k, 0.1, rho_star * 1.000001))
        assert ctrl.select_mode() is ControlMode.SIGMA_RHO_LAMBDA

    def test_heterogeneous_threshold_used(self):
        envs = [
            ArrivalEnvelope(0.2, 0.25),
            ArrivalEnvelope(0.01, 0.02),
            ArrivalEnvelope(0.01, 0.02),
        ]
        ctrl = AdaptiveController(envs)
        assert not ctrl.is_homogeneous
        assert ctrl.rho_star == pytest.approx(heterogeneous_threshold(3))

    def test_single_flow_never_switches(self):
        ctrl = AdaptiveController([ArrivalEnvelope(0.1, 0.9)])
        assert ctrl.select_mode() is ControlMode.SIGMA_RHO

    def test_threshold_override(self):
        ctrl = AdaptiveController(hom_envs(3, 0.1, 0.2), threshold_override=0.1)
        assert ctrl.select_mode() is ControlMode.SIGMA_RHO_LAMBDA

    def test_stability_flag(self):
        assert AdaptiveController(hom_envs(3, 0.1, 0.2)).is_stable
        assert not AdaptiveController(hom_envs(3, 0.1, 0.4)).is_stable

    def test_average_rate(self):
        envs = [ArrivalEnvelope(0.1, 0.1), ArrivalEnvelope(0.1, 0.3)]
        assert AdaptiveController(envs).average_rate == pytest.approx(0.2)

    def test_empty_flows_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveController([])


class TestStaggerPlan:
    def test_windows_tile_without_overlap(self):
        ctrl = AdaptiveController(hom_envs(3, 0.06, 0.3))
        plan = ctrl.build_stagger_plan()
        assert not plan.windows_overlap()
        assert plan.utilization == pytest.approx(0.9)

    def test_offsets_are_cumulative_working_periods(self):
        ctrl = AdaptiveController(hom_envs(3, 0.06, 0.3))
        plan = ctrl.build_stagger_plan()
        w = plan.regulators[0].working_period
        assert plan.offsets == pytest.approx((0.0, w, 2 * w))

    def test_heterogeneous_common_period(self):
        envs = [
            ArrivalEnvelope(0.2, 0.3),
            ArrivalEnvelope(0.05, 0.25),
            ArrivalEnvelope(0.1, 0.2),
        ]
        plan = AdaptiveController(envs).build_stagger_plan()
        periods = {round(r.regulator_period, 12) for r in plan.regulators}
        assert len(periods) == 1
        assert not plan.windows_overlap()

    def test_unstable_plan_rejected(self):
        ctrl = AdaptiveController(hom_envs(3, 0.1, 0.4))
        with pytest.raises(ValueError, match="stability|tile"):
            ctrl.build_stagger_plan()

    def test_plan_validation_direct(self):
        reg = SigmaRhoLambdaRegulator(0.1, 0.3)
        with pytest.raises(ValueError):
            StaggerPlan(
                regulators=(reg,) * 4,  # 4 * W > P at rho = 0.3
                offsets=(0.0, 0.1, 0.2, 0.3),
                period=reg.regulator_period,
            )

    def test_overlap_detection(self):
        reg = SigmaRhoLambdaRegulator(0.1, 0.3)
        plan = StaggerPlan(
            regulators=(reg, reg),
            offsets=(0.0, reg.working_period / 2),  # deliberately overlapping
            period=reg.regulator_period,
        )
        assert plan.windows_overlap()


class TestDescribe:
    def test_describe_reports_paper_quantities(self):
        ctrl = AdaptiveController(hom_envs(3, 0.06, 0.3))
        info = ctrl.describe()
        assert info["k_hat"] == 3
        assert info["mode"] == "sigma-rho-lambda"
        assert info["rho_star_aggregate"] == pytest.approx(
            homogeneous_threshold(3, aggregate=True)
        )
        assert "stagger_period" in info
