"""Deterministic discrete-event simulation core.

A deliberately small engine: a binary-heap event queue with a strict
total order on events ``(time, priority, sequence)`` so that runs are
bit-for-bit reproducible, plus the component conventions the rest of
:mod:`repro.simulation` builds on (components hold a reference to the
simulator and schedule callbacks).

The engine is profiling-friendly (see the HPC guidance in
``/opt/skills/guides``): the hot loop does nothing but pop-and-call, and
:attr:`Simulator.events_processed` lets benchmarks report event rates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the event queue (ordering fields first)."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)

    Events at equal times execute in (priority, schedule-order) order;
    lower priority values run first.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self.events_processed: int = 0
        #: Cancelled events discarded when popped -- the heap residue of
        #: the lazy O(1) cancellation.  Batch harnesses report this next
        #: to :attr:`events_processed` so event-rate figures are honest
        #: about how much of the heap traffic was dead weight.
        self.cancelled_events: int = 0

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Returns the event handle, whose :meth:`ScheduledEvent.cancel`
        removes it lazily (cancelled events are skipped when popped --
        O(1) cancellation at the cost of heap residue, the standard
        trade-off).
        """
        if time < self.now - 1e-15:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        ev = ScheduledEvent(
            time=float(time),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any, priority: int = 0
    ) -> ScheduledEvent:
        """Schedule relative to the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time
            (the clock is left at ``until``).
        max_events:
            Safety valve for tests; raises ``RuntimeError`` when
            exceeded (a runaway component is a bug, not a result).
        """
        queue = self._queue
        processed_here = 0
        while queue:
            ev = queue[0]
            if ev.cancelled:
                heapq.heappop(queue)
                self.cancelled_events += 1
                continue
            if until is not None and ev.time > until:
                break
            heapq.heappop(queue)
            self.now = ev.time
            ev.callback(*ev.args)
            self.events_processed += 1
            processed_here += 1
            if max_events is not None and processed_here > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; runaway component?"
                )
        if until is not None and self.now < until:
            self.now = until

    def peek_time(self) -> float:
        """Time of the next pending event (``inf`` when idle)."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self.cancelled_events += 1
        return self._queue[0].time if self._queue else float("inf")

    @property
    def pending(self) -> int:
        """Number of (non-cancelled) scheduled events."""
        return sum(1 for ev in self._queue if not ev.cancelled)
