"""Analytic general-MUX bounds (Remark 1 / Cruz eq. 13)."""

import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.calculus.mux import (
    mux_backlog_bound,
    mux_delay_bound_heterogeneous,
    mux_delay_bound_homogeneous,
    mux_is_stable,
)


def test_stability_condition():
    envs = [ArrivalEnvelope(1.0, 0.4), ArrivalEnvelope(1.0, 0.5)]
    assert mux_is_stable(envs, 1.0)
    assert not mux_is_stable(envs, 0.8)


def test_heterogeneous_formula():
    envs = [ArrivalEnvelope(1.0, 0.2), ArrivalEnvelope(2.0, 0.3)]
    # sum sigma / (C - sum rho) = 3 / 0.5
    assert mux_delay_bound_heterogeneous(envs) == pytest.approx(6.0)


def test_heterogeneous_unstable_is_inf():
    envs = [ArrivalEnvelope(1.0, 0.6), ArrivalEnvelope(1.0, 0.6)]
    assert mux_delay_bound_heterogeneous(envs) == float("inf")


def test_homogeneous_matches_heterogeneous():
    k, sigma, rho = 3, 0.5, 0.2
    hom = mux_delay_bound_homogeneous(k, sigma, rho)
    het = mux_delay_bound_heterogeneous([ArrivalEnvelope(sigma, rho)] * k)
    assert hom == pytest.approx(het)
    assert hom == pytest.approx(3 * 0.5 / (1 - 0.6))


def test_capacity_scaling():
    envs = [ArrivalEnvelope(1.0, 0.5)]
    assert mux_delay_bound_heterogeneous(envs, capacity=2.0) == pytest.approx(
        1.0 / 1.5
    )


def test_backlog_bound():
    envs = [ArrivalEnvelope(1.0, 0.3), ArrivalEnvelope(0.5, 0.3)]
    assert mux_backlog_bound(envs) == pytest.approx(1.5)
    unstable = [ArrivalEnvelope(1.0, 2.0)]
    assert mux_backlog_bound(unstable) == float("inf")


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        mux_delay_bound_heterogeneous([])
    with pytest.raises(ValueError):
        mux_backlog_bound([])


def test_bound_grows_toward_saturation():
    """The Remark-1 bound must diverge as load approaches capacity."""
    prev = 0.0
    for u in (0.5, 0.7, 0.9, 0.99):
        envs = [ArrivalEnvelope(0.1, u / 3)] * 3
        bound = mux_delay_bound_heterogeneous(envs)
        assert bound > prev
        prev = bound
