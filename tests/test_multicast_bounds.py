"""Section-V multicast bounds: Lemma 2, Theorems 7/8, Remark 2."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delay_bounds import (
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
)
from repro.core.multicast_bounds import (
    dsct_height_bound,
    multicast_improvement_ratio_homogeneous,
    remark2_multicast_wdb_heterogeneous,
    remark2_multicast_wdb_homogeneous,
    theorem7_multicast_wdb_heterogeneous,
    theorem8_multicast_wdb_homogeneous,
)
from repro.core.threshold import homogeneous_threshold


class TestLemma2:
    def test_paper_scale(self):
        # n = 665, k = 3: ceil(log3(3 + 664*2)) = ceil(log3 1331) = 7.
        assert dsct_height_bound(665, 3) == 7

    def test_single_member(self):
        assert dsct_height_bound(1, 3) == 1

    def test_monotone_in_n(self):
        heights = [dsct_height_bound(n, 3) for n in (2, 10, 50, 200, 1000)]
        assert heights == sorted(heights)

    def test_larger_k_is_never_taller(self):
        for n in (10, 100, 1000):
            assert dsct_height_bound(n, 5) <= dsct_height_bound(n, 2)

    def test_j1_tightens(self):
        # Leftover members in L1 only reduce the argument.
        assert dsct_height_bound(100, 3, j1=2) <= dsct_height_bound(100, 3, j1=0)

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            dsct_height_bound(10, 1)
        with pytest.raises(ValueError):
            dsct_height_bound(10, 3, j1=3)
        with pytest.raises(ValueError):
            dsct_height_bound(2, 3, j1=2)

    @given(st.integers(min_value=2, max_value=5000), st.integers(min_value=2, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_bound_covers_perfect_k_ary_hierarchy(self, n, k):
        """A hierarchy with all clusters of size exactly k (the worst
        packing of Lemma 2's proof) has ceil(log_k) layers; the bound
        must dominate it."""
        layers = 1
        width = n
        while width > 1:
            width = math.ceil(width / k)
            layers += 1
        assert dsct_height_bound(n, k) >= layers - 1  # paper counts the
        # singleton top layer into the log expression


class TestTheorem7:
    def test_scales_per_hop_bound(self):
        sigmas, rhos = [0.1, 0.2], [0.2, 0.1]
        per_hop = theorem1_wdb_heterogeneous(sigmas, rhos)
        assert theorem7_multicast_wdb_heterogeneous(
            4, sigmas, rhos
        ) == pytest.approx(3 * per_hop)

    def test_height_one_tree_no_hops(self):
        assert theorem7_multicast_wdb_heterogeneous(1, [0.1], [0.2]) == 0.0

    def test_propagation_term(self):
        base = theorem7_multicast_wdb_heterogeneous(3, [0.1], [0.2])
        with_prop = theorem7_multicast_wdb_heterogeneous(
            3, [0.1], [0.2], per_hop_propagation=0.01
        )
        assert with_prop == pytest.approx(base + 2 * 0.01)


class TestTheorem8:
    def test_scales_theorem2(self):
        per_hop = theorem2_wdb_homogeneous(3, 0.1, 0.2)
        assert theorem8_multicast_wdb_homogeneous(
            5, 3, 0.1, 0.2
        ) == pytest.approx(4 * per_hop)


class TestRemark2:
    def test_scales_remark1(self):
        v = remark2_multicast_wdb_homogeneous(5, 3, 0.1, 0.2)
        assert v == pytest.approx(4 * 0.3 / 0.4)

    def test_heterogeneous_form(self):
        v = remark2_multicast_wdb_heterogeneous(3, [0.1, 0.2], [0.2, 0.2])
        assert v == pytest.approx(2 * 0.3 / 0.6)


class TestMulticastImprovement:
    def test_ratio_equals_single_host_ratio(self):
        """(H-1) cancels: Theorems 7/8 inherit the single-host threshold."""
        k, sigma = 3, 0.1
        rho = homogeneous_threshold(k) * 1.1
        single = remark2_multicast_wdb_homogeneous(
            2, k, sigma, rho
        ) / theorem8_multicast_wdb_homogeneous(2, k, sigma, rho)
        for h in (3, 5, 9):
            multi = multicast_improvement_ratio_homogeneous(h, k, sigma, rho)
            assert multi == pytest.approx(single)

    def test_above_threshold_wins(self):
        k = 3
        rho = homogeneous_threshold(k) * 1.05
        assert multicast_improvement_ratio_homogeneous(6, k, 0.1, rho) > 1.0
