"""The executor contract: ordered results, captured failures.

Every backend must return one ``TaskResult`` per payload in payload
order, with worker exceptions converted into per-cell error records
rather than raised -- the property the campaign runner's "one crashing
cell fails its verdict, not the campaign" guarantee stands on.
"""

import pytest

from repro.runtime.executor import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    auto_chunksize,
    make_executor,
)

pytestmark = pytest.mark.runtime

ALL_EXECUTORS = [
    SerialExecutor(),
    ThreadExecutor(jobs=2),
    ProcessExecutor(jobs=2),
    ProcessExecutor(jobs=2, chunksize=3),
]


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _explode_on_seven(x):
    if x == 7:
        raise RuntimeError("cell seven is cursed")
    return x + 1


@pytest.mark.parametrize(
    "executor", ALL_EXECUTORS, ids=lambda e: f"{e.kind}-c{getattr(e, 'chunksize', None)}"
)
class TestContract:
    def test_results_in_payload_order(self, executor):
        payloads = list(range(23))
        results = executor.map_tasks(_square, payloads)
        assert [r.index for r in results] == payloads
        assert [r.value for r in results] == [x * x for x in payloads]
        assert all(r.ok for r in results)
        assert all(r.wall_time >= 0.0 for r in results)

    def test_exception_captured_per_cell(self, executor):
        results = executor.map_tasks(_explode_on_seven, list(range(12)))
        bad = [r for r in results if not r.ok]
        assert [r.index for r in bad] == [7]
        assert "cell seven is cursed" in bad[0].error
        assert bad[0].value is None
        good = [r for r in results if r.ok]
        assert len(good) == 11
        assert all(r.value == r.index + 1 for r in good)

    def test_empty_payloads(self, executor):
        assert executor.map_tasks(_square, []) == []

    def test_progress_reaches_total(self, executor):
        seen = []
        executor.map_tasks(
            _square, list(range(10)), progress=lambda done, n: seen.append((done, n))
        )
        assert seen[-1] == (10, 10)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


class TestChunking:
    def test_auto_chunksize_bounds(self):
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(1, 4) == 1
        assert auto_chunksize(1000, 1) == 16  # capped
        assert auto_chunksize(8, 4) == 1      # plenty of chunks per worker
        assert 1 <= auto_chunksize(100, 4) <= 16

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            ProcessExecutor(jobs=2, chunksize=0)


class TestFactory:
    def test_default_serial_for_one_job(self):
        assert isinstance(make_executor(None, 1), SerialExecutor)

    def test_default_process_for_many_jobs(self):
        ex = make_executor(None, 3)
        assert isinstance(ex, ProcessExecutor)
        assert ex.jobs == 3

    def test_explicit_kinds(self):
        assert isinstance(make_executor("serial", 1), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)
        assert set(EXECUTOR_KINDS) == {"serial", "thread", "process"}

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            make_executor("process", 0)
        with pytest.raises(ValueError, match="kind"):
            make_executor("quantum", 2)
