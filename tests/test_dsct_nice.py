"""DSCT and NICE tree construction (incl. the Lemma-2 height property)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicast_bounds import dsct_height_bound
from repro.overlay.dsct import build_dsct_tree
from repro.overlay.nice import build_nice_tree
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_rtt_matrix


@pytest.fixture(scope="module")
def world():
    bb = fig5_backbone()
    net = attach_hosts(bb, 90, rng=17)
    return net, host_rtt_matrix(net)


class TestDsct:
    def test_covers_all_members_rooted_at_source(self, world):
        net, rtt = world
        members = list(range(60))
        t = build_dsct_tree(7, members, rtt, net.host_router, rng=1)
        assert t.root == 7
        assert t.members() == set(members)

    def test_height_within_lemma2_bound(self, world):
        net, rtt = world
        for seed in range(5):
            members = list(range(80))
            t = build_dsct_tree(0, members, rtt, net.host_router, k=3, rng=seed)
            assert t.height <= dsct_height_bound(len(members), 3)

    def test_bottom_edges_stay_intra_domain(self, world):
        """DSCT's defining property: leaf hosts attach to cores of the
        same backbone router (location awareness)."""
        net, rtt = world
        members = list(range(90))
        t = build_dsct_tree(0, members, rtt, net.host_router, rng=3)
        ch = t.children()
        leaves = [m for m, c in ch.items() if not c]
        same = sum(
            1 for m in leaves
            if net.host_router[m] == net.host_router[t.parent[m]]
        )
        # Local domains guarantee the vast majority of leaf edges are
        # intra-domain (all of them unless a domain has a single member).
        assert same >= 0.8 * len(leaves)

    def test_single_member_tree(self, world):
        net, rtt = world
        t = build_dsct_tree(4, [4], rtt, net.host_router)
        assert t.size == 1

    def test_source_must_be_member(self, world):
        net, rtt = world
        with pytest.raises(ValueError):
            build_dsct_tree(99, [0, 1], rtt, net.host_router)

    def test_reproducible(self, world):
        net, rtt = world
        a = build_dsct_tree(0, list(range(50)), rtt, net.host_router, rng=5)
        b = build_dsct_tree(0, list(range(50)), rtt, net.host_router, rng=5)
        assert a.parent == b.parent

    def test_duplicate_members_deduplicated(self, world):
        net, rtt = world
        t = build_dsct_tree(0, [0, 1, 1, 2, 2], rtt, net.host_router, rng=1)
        assert t.members() == {0, 1, 2}


class TestNice:
    def test_covers_and_roots(self, world):
        net, rtt = world
        members = list(range(70))
        t = build_nice_tree(3, members, rtt, k=3, rng=2)
        assert t.root == 3
        assert t.members() == set(members)

    def test_height_within_lemma2_bound(self, world):
        net, rtt = world
        for seed in range(5):
            t = build_nice_tree(0, list(range(80)), rtt, k=3, rng=seed)
            assert t.height <= dsct_height_bound(80, 3)

    def test_k_parameter_changes_shape(self, world):
        net, rtt = world
        t2 = build_nice_tree(0, list(range(80)), rtt, k=2, rng=4)
        t5 = build_nice_tree(0, list(range(80)), rtt, k=5, rng=4)
        # Larger clusters -> shallower hierarchy (weak but stable check).
        assert t5.height <= t2.height


@given(
    n=st.integers(min_value=2, max_value=90),
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_dsct_height_bound_property(n, k, seed, ):
    """Every constructed DSCT tree respects Lemma 2's bound.

    Note the bound applies to the *pure* hierarchy; DSCT's domain
    partition adds the inter-domain layering on top, which the paper's
    own analysis folds into the same bound because local domains are
    clusters of the same [k, 3k-1] machinery.  We allow the +1 grace the
    construction may need when a domain's local core chain tops out.
    """
    bb = fig5_backbone()
    net = attach_hosts(bb, n, rng=seed)
    rtt = host_rtt_matrix(net)
    tree = build_dsct_tree(0, list(range(n)), rtt, net.host_router, k=k, rng=seed)
    assert tree.height <= dsct_height_bound(n, k) + 1
