"""Experiment harness: every figure and table of the paper.

One module per experiment family (see DESIGN.md's per-experiment index):

* :mod:`repro.experiments.single_host` -- Figures 4(a)-(c): WDB of one
  regulated end host vs the average input rate, (sigma, rho) against
  (sigma, rho, lambda).
* :mod:`repro.experiments.multigroup` -- Figures 6(a)-(c): worst-case
  multicast delay of six scheme combinations over the 665-host,
  3-group network.
* :mod:`repro.experiments.trees` -- Tables I-III: tree layer numbers of
  capacity-aware DSCT vs DSCT with the (sigma, rho, lambda) regulator.
* :mod:`repro.experiments.theory` -- the rate-threshold and
  improvement-ratio results (Theorems 3-6), numeric vs closed-form.
* :mod:`repro.experiments.report` -- ASCII rendering, crossover and
  improvement extraction.
* :mod:`repro.experiments.cli` -- ``repro-experiments`` entry point.
"""

from repro.experiments.config import (
    PAPER_UTILIZATIONS,
    Fig4Config,
    Fig6Config,
    TableConfig,
)
from repro.experiments.multigroup import Fig6Result, run_fig6
from repro.experiments.report import (
    find_crossover,
    max_improvement,
    render_table,
)
from repro.experiments.single_host import Fig4Result, run_fig4
from repro.experiments.theory import (
    improvement_ratio_table,
    threshold_table,
)
from repro.experiments.trees import TableResult, run_tree_table
from repro.experiments.validation import ValidationCell, validate_bounds

__all__ = [
    "PAPER_UTILIZATIONS",
    "Fig4Config",
    "Fig6Config",
    "TableConfig",
    "Fig4Result",
    "run_fig4",
    "Fig6Result",
    "run_fig6",
    "TableResult",
    "run_tree_table",
    "ValidationCell",
    "validate_bounds",
    "threshold_table",
    "improvement_ratio_table",
    "find_crossover",
    "max_improvement",
    "render_table",
]
