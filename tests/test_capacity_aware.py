"""Capacity-aware tree variants: degree bounds and height growth."""

import numpy as np
import pytest

from repro.overlay.capacity_aware import (
    capacity_aware_dsct,
    capacity_aware_nice,
    capacity_degree_bound,
)
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_rtt_matrix


@pytest.fixture(scope="module")
def world():
    bb = fig5_backbone()
    net = attach_hosts(bb, 100, rng=31)
    rtt = host_rtt_matrix(net)
    gen = np.random.default_rng(31)
    caps = gen.uniform(4.0, 10.0, size=100)
    return net, rtt, caps


def _capacity_violations(tree, caps, u):
    """Non-root hosts whose fan-out exceeds their degree bound.

    The builder preserves connectivity over the cap when a whole layer
    has exhausted its budget, so the guarantee is 'no violations while
    any capacity remains' -- the tests require zero at moderate load.
    """
    out = []
    for h, fan in tree.fanout().items():
        if h == tree.root:
            continue  # the re-rooting graft may add one child
        bound = capacity_degree_bound(caps[h], u)
        if fan > bound:
            out.append((h, fan, bound))
    return out


class TestDegreeBound:
    def test_fig1_example(self):
        """C = 5 rho, two groups: floor(5rho / 2rho) = 2 children."""
        assert capacity_degree_bound(5.0, 2.0) == 2

    def test_single_group_fig1(self):
        assert capacity_degree_bound(5.0, 1.0) == 5

    def test_minimum_one(self):
        assert capacity_degree_bound(0.5, 2.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_degree_bound(0.0, 1.0)
        with pytest.raises(ValueError):
            capacity_degree_bound(1.0, 0.0)


class TestCapacityAwareDsct:
    def test_covers_members(self, world):
        net, rtt, caps = world
        t = capacity_aware_dsct(
            0, list(range(100)), rtt, net.host_router, caps, 0.6, rng=1
        )
        assert t.members() == set(range(100))
        assert t.root == 0

    def test_fanout_respects_capacity(self, world):
        net, rtt, caps = world
        u = 0.6
        t = capacity_aware_dsct(
            0, list(range(100)), rtt, net.host_router, caps, u, rng=2
        )
        violations = _capacity_violations(t, caps, u)
        assert violations == []

    def test_height_grows_with_rate(self, world):
        """The Table I-III phenomenon at tree level."""
        net, rtt, caps = world
        heights = []
        for u in (0.35, 0.65, 0.95):
            hs = []
            for seed in range(3):
                t = capacity_aware_dsct(
                    0, list(range(100)), rtt, net.host_router, caps, u, rng=seed
                )
                hs.append(t.height)
            heights.append(np.mean(hs))
        assert heights[-1] > heights[0]

    def test_reproducible(self, world):
        net, rtt, caps = world
        a = capacity_aware_dsct(
            0, list(range(60)), rtt, net.host_router, caps, 0.5, rng=9
        )
        b = capacity_aware_dsct(
            0, list(range(60)), rtt, net.host_router, caps, 0.5, rng=9
        )
        assert a.parent == b.parent


class TestCapacityAwareNice:
    def test_covers_members(self, world):
        net, rtt, caps = world
        t = capacity_aware_nice(0, list(range(100)), rtt, caps, 0.6, rng=1)
        assert t.members() == set(range(100))

    def test_fanout_respects_capacity(self, world):
        net, rtt, caps = world
        u = 0.8
        t = capacity_aware_nice(0, list(range(100)), rtt, caps, u, rng=3)
        assert _capacity_violations(t, caps, u) == []
