"""Event-driven regulators: conformance and window discipline."""

import numpy as np
import pytest

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace, VBRVideoSource
from repro.simulation.packet import Packet
from repro.simulation.regulator_sim import TokenBucketComponent, VacationComponent
from repro.utils.piecewise import PiecewiseLinearCurve as PLC


class Collector:
    """Terminal sink recording (time, packet) deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def receive(self, pkt):
        self.deliveries.append((self.sim.now, pkt))

    def output_curve(self):
        times = [t for t, _ in self.deliveries]
        sizes = [p.size for _, p in self.deliveries]
        return PLC.from_packet_arrivals(times, sizes)

    @property
    def total(self):
        return sum(p.size for _, p in self.deliveries)


def inject(sim, component, times, sizes, flow_id=0):
    for t, s in zip(times, sizes):
        sim.schedule(t, component.receive, Packet(flow_id, float(s), float(t)))


class TestTokenBucket:
    def test_conformant_traffic_passes_undelayed(self):
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.1, rho=0.5, sink=sink)
        times = np.arange(0.0, 1.0, 0.1)
        inject(sim, tb, times, np.full(10, 0.05))  # rate 0.5, burst 0.05
        sim.run()
        delivered = [t for t, _ in sink.deliveries]
        assert np.allclose(delivered, times)

    def test_output_conforms_to_envelope(self):
        """The defining property of the greedy (sigma, rho) shaper."""
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.05, rho=0.3, sink=sink)
        tr = VBRVideoSource(0.3).generate(5.0, rng=3).fragment(0.01)
        inject(sim, tb, tr.times, tr.sizes)
        sim.run()
        out = sink.output_curve()
        assert out.conforms(sigma=0.05 + 0.01, rho=0.3)  # + one MTU slack

    def test_conservation(self):
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.02, rho=0.2, sink=sink)
        tr = VBRVideoSource(0.2).generate(3.0, rng=5).fragment(0.005)
        inject(sim, tb, tr.times, tr.sizes)
        sim.run()
        assert sink.total == pytest.approx(tr.total)

    def test_oversized_burst_queues_then_drains(self):
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.1, rho=0.5, sink=sink)
        # 0.3 of data at t=0 against a 0.1 bucket at rate 0.5:
        # 0.1 passes immediately, the rest drains at rho.
        inject(sim, tb, [0.0] * 3, [0.1] * 3)
        sim.run()
        t_last = sink.deliveries[-1][0]
        assert t_last == pytest.approx(0.4)  # 0.2 excess / 0.5

    def test_fifo_order_preserved(self):
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.01, rho=0.1, sink=sink)
        inject(sim, tb, [0.0, 0.0, 0.0], [0.01, 0.01, 0.01])
        sim.run()
        uids = [p.uid for _, p in sink.deliveries]
        assert uids == sorted(uids)

    def test_cold_start(self):
        sim = Simulator()
        sink = Collector(sim)
        tb = TokenBucketComponent(sim, sigma=0.1, rho=0.5, sink=sink, start_full=False)
        inject(sim, tb, [0.0], [0.05])
        sim.run()
        # Empty bucket: wait size/rho = 0.1 s.
        assert sink.deliveries[0][0] == pytest.approx(0.1)


class TestVacationComponent:
    def make(self, sim, sigma=0.05, rho=0.25, offset=0.0):
        reg = SigmaRhoLambdaRegulator(sigma, rho)
        sink = Collector(sim)
        vc = VacationComponent(sim, reg, sink, offset=offset, out_rate=1.0)
        return reg, vc, sink

    def test_deliveries_only_during_windows(self):
        sim = Simulator()
        reg, vc, sink = self.make(sim)
        tr = VBRVideoSource(0.25).generate(4.0, rng=7).fragment(0.005)
        inject(sim, vc, tr.times, tr.sizes)
        sim.run()
        for t, p in sink.deliveries:
            # The *completion* instant may touch the window end.
            start_ok = reg.is_on(t - p.size * 0.5)
            assert start_ok, f"delivery at {t} outside any window"

    def test_conservation(self):
        sim = Simulator()
        _, vc, sink = self.make(sim)
        tr = VBRVideoSource(0.25).generate(4.0, rng=9).fragment(0.005)
        inject(sim, vc, tr.times, tr.sizes)
        sim.run()
        assert sink.total == pytest.approx(tr.total)

    def test_offset_delays_first_window(self):
        sim = Simulator()
        reg, vc, sink = self.make(sim, offset=0.3)
        inject(sim, vc, [0.0], [0.01])
        sim.run()
        assert sink.deliveries[0][0] == pytest.approx(0.3 + 0.01)

    def test_packet_blocked_during_vacation(self):
        sim = Simulator()
        reg, vc, sink = self.make(sim)
        w = reg.working_period
        # Arrive just after the window closes; must wait for the next.
        inject(sim, vc, [w + 1e-6], [0.01])
        sim.run()
        expected = reg.regulator_period + 0.01
        assert sink.deliveries[0][0] == pytest.approx(expected, rel=1e-6)

    def test_oversized_packet_rejected(self):
        sim = Simulator()
        reg, vc, sink = self.make(sim, sigma=0.01, rho=0.5)
        # One packet larger than W * out_rate can never fit a window.
        inject(sim, vc, [0.0], [reg.working_period * 2])
        with pytest.raises(ValueError, match="working period"):
            sim.run()

    def test_average_output_rate_is_rho(self):
        """Over many periods the regulator sustains exactly rho."""
        sim = Simulator()
        reg, vc, sink = self.make(sim, sigma=0.05, rho=0.25)
        # Saturate the regulator: plenty of backlog.
        inject(sim, vc, [0.0] * 200, [0.01] * 200)  # 2.0 data total
        sim.run()
        t_last = sink.deliveries[-1][0]
        # 2.0 data at duty-cycle rho=0.25 -> ~8 s of cycles.
        assert 2.0 / t_last == pytest.approx(0.25, rel=0.1)

    def test_no_event_storm_at_window_boundary(self):
        """Regression: float noise at window ends must not spin the loop
        (the bug fixed in next_window_start's integer-index rewrite)."""
        sim = Simulator()
        reg, vc, sink = self.make(sim, sigma=0.0496620611, rho=0.15)
        tr = VBRVideoSource(0.15).generate(3.0, rng=100).fragment(0.002)
        inject(sim, vc, tr.times, tr.sizes)
        sim.run(max_events=200_000)
        assert sink.total == pytest.approx(tr.total)
