"""Pluggable persistent campaign result stores.

A campaign's results live in a *store*: one record per evaluated cell,
keyed by a sha256 content hash of the cell's spec, plus an aggregate
``summary.json``.  Two interchangeable backends implement the
:class:`ResultStore` contract:

:class:`JsonlResultStore` (``jsonl:DIR`` or a plain directory)
    Append-only ``results.jsonl`` under a campaign directory.  The
    original backend: human-greppable, diff-friendly, single-writer
    (concurrent appends from multiple processes can tear lines, which
    the quarantine then eats).
:class:`SqliteResultStore` (``sqlite:DIR``)
    ``results.sqlite`` under a campaign directory, WAL-journaled, cell
    keys as primary keys.  Safe for **concurrent writers**: independent
    shard processes (or hosts on a shared filesystem) fill one store
    without torn records, which is what campaign sharding
    (``scenarios run --shard i/N``) builds on.

:func:`open_store` is the factory: it accepts a store instance, a
``scheme:path`` URL, or a bare directory (auto-detected by the files
present, defaulting to JSONL).  Everything above the store -- resume,
cost-model refit, perf-budget verdicts, ``diff_stores``,
``merge_stores`` -- is backend-agnostic.

Shared semantics (the backend contract)
---------------------------------------
* ``append`` / ``append_many`` persist records carrying a ``key``;
  duplicate keys are legal and the **last** record wins.
* ``load`` returns all valid records keyed by cell key.  Corrupt rows
  (torn JSONL lines, manually edited SQLite payloads) are moved to the
  backend's quarantine (``quarantine.jsonl`` file / ``quarantine``
  table), counted in :attr:`ResultStore.quarantined`, and never raised.
* ``write_summary`` rewrites ``summary.json`` from the records.  The
  summary is **deterministic**: it aggregates only content-derived
  fields (verdict counts, tightness), never wall clocks -- so a
  campaign sharded over N concurrent processes produces a
  ``summary.json`` bit-identical to the serial single-process run.

Cell record schema (``v`` = 2)::

    {"v": 2,
     "key": <sha256 prefix over the full scenario spec, seed included>,
     "fingerprint": <sha256 prefix over the spec minus its seed>,
     "name": str, "sound": bool, "error": str | null,
     "measured": float, "bound": float, "baseline_bound": float,
     "eps": float, "tightness": float,
     "eff_mode": str, "eff_backend": str, "hops": int,
     "propagation_total": float, "events": int, "cancelled_events": int,
     "height_ok": bool, "wall_time": float,
     "perf_budget": float, "budget_ok": bool, "tags": [str, ...],
     "backend": str, "k": int, "tree_members": int,
     "horizon": float, "dt": float,
     "spec": {<full Scenario spec as a JSON object>}}

``v2`` adds ``spec`` -- the complete scenario spec -- so a store is
self-contained: ``scenarios curate`` re-materialises promising cells
from it without the generating code, and any cell can be re-run from
its record alone.  ``v1`` records (no ``spec``) load fine.

``key`` identifies *the evaluation*: it hashes every field that can
change a realised trace or a measured delay (any such change
re-evaluates), but **not** ``perf_budget`` -- a budget only moves the
verdict threshold, so tightening it must neither invalidate stored
measurements nor decouple two otherwise-identical campaigns under
``diff``.  ``fingerprint`` additionally drops the seed: it names the
configuration alone, is what deterministic per-cell seed derivation
hashes (:func:`repro.scenarios.generator.generate_scenarios`), and is
what campaign sharding partitions on (a cell's shard never depends on
its seed derivation, execution order, or verdict knobs).  Keys are
content hashes, so two campaigns are diffable cell-by-cell no matter
how their matrices were ordered, chunked, or sharded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.runtime.faults import InjectedFault, active_plan

__all__ = [
    "SCHEMA_VERSION",
    "spec_fingerprint",
    "cell_key",
    "fingerprint_shard",
    "ResultStore",
    "JsonlResultStore",
    "open_store",
    "merge_stores",
    "CampaignDiff",
    "diff_records",
    "diff_stores",
]

SCHEMA_VERSION = 2

#: Hex digits kept from the sha256 digest (64 bits: ample for campaign
#: sizes while keeping keys human-greppable).
_KEY_LEN = 16


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss
    (best-effort: not every filesystem supports directory fds)."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _coerce_root(root: Any, scheme: str) -> Path:
    """Validate and normalise a store constructor's ``root`` argument.

    Only strings and path-likes (``os.PathLike``) are acceptable:
    anything else (a :class:`ResultStore` instance, an outcome object,
    ...) used to be ``str()``-coerced into a literal
    ``<... object at 0x...>`` directory on disk.  Such targets now
    fail loudly with the routing advice (``open_store`` passes
    instances through).
    """
    if isinstance(root, os.PathLike):
        return Path(os.fspath(root))
    if not isinstance(root, str):
        raise TypeError(
            f"store root must be a str or path-like, got {type(root).__name__}"
            + (
                "; pass existing store instances through open_store()"
                if isinstance(root, ResultStore)
                else ""
            )
        )
    if root.startswith(scheme + ":"):
        root = root[len(scheme) + 1:]
    return Path(root)


def _spec_dict(spec: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        return dataclasses.asdict(spec)
    if isinstance(spec, Mapping):
        return dict(spec)
    raise TypeError(
        f"spec must be a dataclass instance or mapping, got {type(spec).__name__}"
    )


#: Spec fields that cannot change a realised trace or measured delay
#: (verdict-threshold knobs); excluded from both hashes so execution
#: details never re-key or re-seed a cell.
_VERDICT_ONLY_FIELDS = ("perf_budget",)


def _hash_fields(fields: Mapping[str, Any]) -> str:
    digest = hashlib.sha256(_canonical_json(dict(fields)).encode()).hexdigest()
    return digest[:_KEY_LEN]


def spec_fingerprint(spec: Any) -> str:
    """Content hash of a scenario spec **excluding seed and verdict knobs**.

    The fingerprint names a cell's configuration; the deterministic
    seed derivation ``derive_seed(campaign_seed, fingerprint)`` then
    gives every cell an RNG stream that depends only on *what* the cell
    is, never on where or when it executes or how it is verdicted.
    """
    fields = _spec_dict(spec)
    fields.pop("seed", None)
    for name in _VERDICT_ONLY_FIELDS:
        fields.pop(name, None)
    return _hash_fields(fields)


def cell_key(spec: Any) -> str:
    """Content hash of the evaluation-relevant spec (seed included).

    Verdict-only knobs (``perf_budget``) are excluded: they cannot
    change a measurement, so budget changes neither invalidate stored
    results on resume nor break cell alignment across ``diff``.
    """
    fields = _spec_dict(spec)
    for name in _VERDICT_ONLY_FIELDS:
        fields.pop(name, None)
    return _hash_fields(fields)


def fingerprint_shard(fingerprint: str, total: int) -> int:
    """Deterministic shard index of a cell fingerprint, in ``[0, total)``.

    Pure content partitioning: the same cell lands in the same shard on
    every host, for any matrix ordering, because the fingerprint hashes
    the configuration alone.
    """
    if total < 1:
        raise ValueError(f"shard count must be >= 1, got {total}")
    return int(fingerprint, 16) % total


# ----------------------------------------------------------------------
# The store contract
# ----------------------------------------------------------------------
class ResultStore:
    """Backend contract for persistent campaign result stores.

    Calling the base class dispatches through :func:`open_store`, so
    ``ResultStore(target)`` keeps working as the one-stop constructor
    for paths and URLs::

        ResultStore("campaigns/nightly")          # JSONL (default)
        ResultStore("sqlite:campaigns/nightly")   # SQLite backend

    (An existing store *instance* must go through :func:`open_store`
    instead: ``type.__call__`` would re-run the instance's ``__init__``
    after the dispatching ``__new__`` returned it.)

    Subclasses implement ``append``/``append_many``/``load`` plus the
    ``kind`` label; everything else (summaries, completed keys) is
    shared and backend-agnostic.
    """

    SUMMARY = "summary.json"
    #: Sidecar SQLite database holding the lease + heartbeat tables for
    #: backends whose results file is not itself multi-writer-safe.
    LEASES = "leases.sqlite"

    #: Backend label (CLI/report lines, ``open_store`` schemes).
    kind: str = "abstract"
    #: Campaign directory.
    root: Path
    #: Number of corrupt rows moved aside by the last :meth:`load`.
    quarantined: int = 0

    def __new__(cls, target: Union[str, Path, None] = None, *args, **kwargs):
        if cls is ResultStore:
            if target is None:
                raise TypeError("ResultStore needs a target path or URL")
            if isinstance(target, ResultStore):
                raise TypeError(
                    "pass existing store instances to open_store(); "
                    "ResultStore(instance) would re-run its __init__"
                )
            return open_store(target)
        return super().__new__(cls)

    @property
    def summary_path(self) -> Path:
        return self.root / self.SUMMARY

    # -- backend hooks ---------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Persist one cell record (must carry a ``key``)."""
        raise NotImplementedError

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Persist many records (backends batch this into one commit)."""
        for rec in records:
            self.append(rec)

    def load(self) -> dict[str, dict[str, Any]]:
        """All valid records keyed by cell key (last record wins).

        Corrupt rows are moved to the backend's quarantine and counted
        in :attr:`quarantined` -- never raised.
        """
        raise NotImplementedError

    def append_telemetry(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Persist run telemetry records (spans/counters/grouping/fit).

        A separate channel from cell records: telemetry is run-local
        observability data, never feeds :meth:`write_summary` (which
        must stay deterministic), and needs no keys -- records
        accumulate append-only across runs.  The base implementation is
        a no-op so store-like test doubles ignore telemetry for free.
        """

    def load_telemetry(self) -> list[dict[str, Any]]:
        """All telemetry records, in append order (unparseable rows are
        skipped -- telemetry must never fail a load)."""
        return []

    def append_poison(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Persist poison-cell records (cells that failed all retries).

        A dedicated quarantine-like channel, separate from results so a
        ``--resume`` can retry exactly the poisoned cells while the
        diagnosis (attempt count, last error) survives next to the
        campaign.  Appends accumulate; no-op in the base class.
        """

    def load_poison(self) -> list[dict[str, Any]]:
        """All poison records, in append order (best-effort parse)."""
        return []

    def close(self) -> None:
        """Release backend resources (no-op for file-based backends)."""
        table = getattr(self, "_lease_table", None)
        if table is not None:
            table.close()
            self._lease_table = None

    def leases(self):
        """This store's lease/heartbeat table (the distributed-campaign
        coordination surface, see
        :class:`repro.runtime.store_sqlite.LeaseTable`).

        The SQLite backend hosts the tables inside ``results.sqlite``;
        every other backend (including this base implementation)
        delegates to a ``leases.sqlite`` sidecar in the campaign
        directory -- so lease claims are always multi-writer-safe even
        when the records land in a single-writer JSONL file.
        """
        table = getattr(self, "_lease_table", None)
        if table is None:
            from repro.runtime.store_sqlite import LeaseTable

            table = LeaseTable(self.root / self.LEASES)
            self._lease_table = table
        return table

    # -- shared ----------------------------------------------------------
    @staticmethod
    def _stamp(record: Mapping[str, Any]) -> dict[str, Any]:
        if "key" not in record:
            raise ValueError("a cell record needs a 'key'")
        return {"v": SCHEMA_VERSION, **record}

    def completed_keys(self) -> set[str]:
        """Keys of cells whose evaluation finished without a crash."""
        return {
            key
            for key, rec in self.load().items()
            if not rec.get("error")
        }

    def write_summary(self, extra: Optional[Mapping[str, Any]] = None) -> dict:
        """Aggregate the store into ``summary.json`` (and return it).

        Deterministic by construction: only content-derived verdict
        aggregates enter the summary (never wall clocks or run-local
        accounting), so any partitioning of a campaign over concurrent
        writers summarises bit-identically to the serial run.  Volatile
        run facts (throughput, worker wall time) live in the run report
        (:class:`repro.runtime.campaign.CampaignReport`) instead.
        """
        records = self.load()
        finite = [
            r["tightness"]
            for r in records.values()
            if isinstance(r.get("tightness"), (int, float))
        ]
        summary = {
            "v": SCHEMA_VERSION,
            "cells": len(records),
            "sound": sum(1 for r in records.values() if r.get("sound")),
            "unsound": sum(
                1
                for r in records.values()
                if not r.get("sound") and not r.get("error")
            ),
            "errors": sum(1 for r in records.values() if r.get("error")),
            "budget_violations": sum(
                1 for r in records.values() if r.get("budget_ok") is False
            ),
            "max_tightness": max(finite, default=0.0),
            "quarantined_rows": self.quarantined,
        }
        if extra:
            summary.update(extra)
        # Crash-consistent replace: concurrent shard processes each
        # rewrite the summary as they finish, and a reader (or a racing
        # writer, or a resume after SIGKILL) must never observe a
        # truncated file.  The tmp file is fsynced before the rename
        # and the directory after it, so the summary survives not just
        # a process kill but a power cut at any instant.
        tmp = self.summary_path.with_name(
            f".{self.SUMMARY}.{os.getpid()}.tmp"
        )
        with tmp.open("w") as fh:
            fh.write(json.dumps(summary, indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.summary_path)
        _fsync_dir(self.root)
        return summary


# ----------------------------------------------------------------------
# JSONL backend
# ----------------------------------------------------------------------
class JsonlResultStore(ResultStore):
    """Append-only JSONL store under one campaign directory.

    Three files: ``results.jsonl`` (the source of truth),
    ``quarantine.jsonl`` (lines that failed to parse -- torn writes,
    manual edits), ``summary.json``.  Single-writer by design; use the
    SQLite backend (or per-shard JSONL stores plus ``merge_stores``)
    for concurrent writers.
    """

    RESULTS = "results.jsonl"
    QUARANTINE = "quarantine.jsonl"
    TELEMETRY = "telemetry.jsonl"
    POISON = "poison.jsonl"

    kind = "jsonl"

    def __init__(self, root: Union[str, Path], *, fsync: bool = False):
        self.root = _coerce_root(root, "jsonl")
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantined = 0
        #: Durability knob: fsync ``results.jsonl`` after every append
        #: batch, trading throughput for power-loss safety.  Off by
        #: default -- append atomicity plus the quarantine already
        #: cover process-kill crashes, the common failure.
        self.fsync = bool(fsync)

    @property
    def results_path(self) -> Path:
        return self.root / self.RESULTS

    @property
    def quarantine_path(self) -> Path:
        return self.root / self.QUARANTINE

    # -- writing ---------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        records = list(records)
        lines = [_canonical_json(self._stamp(rec)) + "\n" for rec in records]
        if not lines:
            return
        plan = active_plan()
        # A crash (or injected torn write) can leave the file ending
        # mid-line; appending straight after would merge this batch's
        # first record into the torn residue and lose it.  Start every
        # batch on a fresh line so the residue quarantines alone.
        torn_tail = False
        try:
            if self.results_path.stat().st_size > 0:
                with self.results_path.open("rb") as rf:
                    rf.seek(-1, os.SEEK_END)
                    torn_tail = rf.read(1) != b"\n"
        except OSError:
            pass
        with self.results_path.open("a") as fh:
            if torn_tail:
                fh.write("\n")
            if plan is None:
                fh.write("".join(lines))
            else:
                # Chaos-harness path: write record by record so an
                # injected failure leaves the same on-disk states a
                # real crash would -- nothing ("fail") or a torn line
                # ("torn").  Retrying re-appends the whole batch:
                # duplicates resolve last-record-wins and the torn
                # residue is quarantined on the next load.
                for rec, line in zip(records, lines):
                    kind = plan.store_fault(str(rec.get("key", "")))
                    if kind == "fail":
                        fh.flush()
                        raise InjectedFault(
                            f"injected store failure before record "
                            f"{rec.get('key')!r}"
                        )
                    if kind == "torn":
                        fh.write(line[: max(1, len(line) // 2)])
                        fh.flush()
                        raise InjectedFault(
                            f"injected torn write at record "
                            f"{rec.get('key')!r}"
                        )
                    fh.write(line)
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())

    def append_telemetry(self, records: Iterable[Mapping[str, Any]]) -> None:
        lines = [_canonical_json(dict(rec)) + "\n" for rec in records]
        if not lines:
            return
        with (self.root / self.TELEMETRY).open("a") as fh:
            fh.write("".join(lines))

    def load_telemetry(self) -> list[dict[str, Any]]:
        path = self.root / self.TELEMETRY
        if not path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # telemetry is best-effort: skip torn lines
            if isinstance(rec, dict):
                out.append(rec)
        return out

    def append_poison(self, records: Iterable[Mapping[str, Any]]) -> None:
        lines = [_canonical_json(dict(rec)) + "\n" for rec in records]
        if not lines:
            return
        with (self.root / self.POISON).open("a") as fh:
            fh.write("".join(lines))

    def load_poison(self) -> list[dict[str, Any]]:
        path = self.root / self.POISON
        if not path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # diagnosis channel: best-effort like telemetry
            if isinstance(rec, dict):
                out.append(rec)
        return out

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[str, dict[str, Any]]:
        self.quarantined = 0
        records: dict[str, dict[str, Any]] = {}
        if not self.results_path.exists():
            return records
        bad: list[str] = []
        for line in self.results_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                bad.append(line)
                continue
            records[str(key)] = rec
        if bad:
            self.quarantined = len(bad)
            with self.quarantine_path.open("a") as fh:
                for line in bad:
                    fh.write(line + "\n")
            kept = [_canonical_json(rec) for rec in records.values()]
            self.results_path.write_text(
                "".join(r + "\n" for r in kept)
            )
        return records


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def open_store(
    target: Union[str, Path, "ResultStore"], *, must_exist: bool = False
) -> "ResultStore":
    """Open a result store from an instance, a URL, or a directory.

    * a :class:`ResultStore` instance is returned as-is;
    * ``sqlite:DIR`` / ``jsonl:DIR`` URLs force the named backend;
    * a bare path is auto-detected by the files already present
      (``results.sqlite`` -> SQLite, otherwise JSONL) -- so resuming or
      diffing an existing store never needs the URL spelled out.

    ``must_exist=True`` refuses to open a target with no results file
    on disk (``FileNotFoundError``) instead of silently creating an
    empty store.  Anything consumed as a *reference* -- a pinned
    baseline, a diff side, a curation or merge source -- should pass
    it: a typo'd path must fail the gate loudly, never pass it by
    comparing against nothing.
    """
    if isinstance(target, ResultStore):
        return target
    if not isinstance(target, (str, os.PathLike)):
        # A stray object would be str()-coerced into a literal
        # "<... object at 0x...>" directory; fail loudly instead.
        raise TypeError(
            "open_store expects a ResultStore instance, a URL, or a "
            f"path; got {type(target).__name__}"
        )
    from repro.runtime.store_sqlite import SqliteResultStore

    spec = os.fspath(target) if isinstance(target, os.PathLike) else target
    if spec.startswith("sqlite:"):
        cls, root = SqliteResultStore, Path(spec[len("sqlite:"):])
    elif spec.startswith("jsonl:"):
        cls, root = JsonlResultStore, Path(spec[len("jsonl:"):])
    elif (Path(spec) / SqliteResultStore.RESULTS).exists():
        cls, root = SqliteResultStore, Path(spec)
    else:
        cls, root = JsonlResultStore, Path(spec)
    # A store that never appended a record still writes summary.json
    # (a shard can legitimately own zero cells), and a campaign that
    # crashed before any result landed may hold only telemetry or
    # poison diagnoses -- all of it is evidence of a real store that a
    # reference consumer (report, diff, merge source) must be able to
    # open.  Checked before construction: the constructor would mkdir
    # the (possibly typo'd) directory, and a reference store must never
    # be conjured empty.
    evidence = [root / cls.RESULTS, root / cls.SUMMARY]
    for attr in ("TELEMETRY", "POISON", "LEASES"):
        name = getattr(cls, attr, None)
        if name:
            evidence.append(root / name)
    if must_exist and not any(path.exists() for path in evidence):
        raise FileNotFoundError(
            f"no result store at {spec!r} (missing {root / cls.RESULTS})"
        )
    return cls(root)


def merge_stores(
    dest: Union[str, Path, ResultStore],
    sources: Sequence[Union[str, Path, ResultStore]] = (),
) -> dict:
    """Merge source stores into ``dest`` and rewrite its summary.

    Records are merged key-sorted with later sources winning ties, so a
    merge of disjoint campaign shards (the sharded-run layout) is fully
    deterministic regardless of source completion order.  With no
    sources this is a pure summary refresh -- the documented last step
    after concurrent shards finish filling one shared store.

    Backends may differ freely: JSONL shards can merge into a SQLite
    store and vice versa.  Returns the rewritten summary.

    The sources' telemetry and poison channels travel with their
    records: both are appended to the destination's matching channel,
    each record tagged ``merged_from: "<kind>:<root>"`` (an existing
    tag from an earlier merge is preserved, so provenance points at the
    original campaign, not the intermediate hop).  Dropping them --
    the pre-PR-10 behaviour -- silently discarded every attempt ledger
    and poison diagnosis the moment shards were folded together.

    A locked destination (another shard mid-commit) is absorbed by the
    SQLite backend's bounded busy-retry rather than failing the merge;
    any retries spent are surfaced as a ``store_retries`` telemetry
    record on the destination.
    """
    dest_store = open_store(dest)
    merged: dict[str, dict[str, Any]] = {}
    telemetry_carry: list[dict[str, Any]] = []
    poison_carry: list[dict[str, Any]] = []
    busy = 0
    for src in sources:
        src_store = open_store(src)
        if (
            src_store.root.resolve() == dest_store.root.resolve()
            and src_store.kind == dest_store.kind
        ):
            raise ValueError(f"cannot merge store {src!r} into itself")
        merged.update(src_store.load())
        src_tag = f"{src_store.kind}:{src_store.root}"
        telemetry_carry.extend(
            {"merged_from": src_tag, **rec}
            for rec in src_store.load_telemetry()
        )
        poison_carry.extend(
            {"merged_from": src_tag, **rec}
            for rec in src_store.load_poison()
        )
        busy += getattr(src_store, "busy_retries", 0)
    if merged:
        dest_store.append_many(
            merged[key] for key in sorted(merged)
        )
    if telemetry_carry:
        dest_store.append_telemetry(telemetry_carry)
    if poison_carry:
        dest_store.append_poison(poison_carry)
    summary = dest_store.write_summary()
    busy += getattr(dest_store, "busy_retries", 0)
    if busy:
        dest_store.append_telemetry(
            [{"kind": "store_retries", "busy_retries": busy, "source": "merge"}]
        )
    return summary


# ----------------------------------------------------------------------
# Campaign diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignDiff:
    """Cell-level comparison of two campaigns (keys are cell keys)."""

    regressions: tuple[str, ...]          # sound -> unsound/error
    fixes: tuple[str, ...]                # unsound/error -> sound
    budget_regressions: tuple[str, ...]   # within budget -> over budget
    added: tuple[str, ...]                # only in the new campaign
    removed: tuple[str, ...]              # only in the old campaign

    @property
    def clean(self) -> bool:
        """No soundness or perf-budget regression (the CI gate)."""
        return not self.regressions and not self.budget_regressions

    def gate(self, *, strict: bool = False) -> bool:
        """The baseline-gate verdict: ``clean``, and under ``strict``
        additionally no baseline cells missing from the candidate
        (coverage loss is a regression too)."""
        return self.clean and (not strict or not self.removed)

    def to_dict(self) -> dict:
        """Machine-readable form (``scenarios diff --json``)."""
        return {
            "clean": self.clean,
            "regressions": list(self.regressions),
            "fixes": list(self.fixes),
            "budget_regressions": list(self.budget_regressions),
            "added": list(self.added),
            "removed": list(self.removed),
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"soundness regressions: {len(self.regressions)}",
            f"soundness fixes: {len(self.fixes)}",
            f"perf-budget regressions: {len(self.budget_regressions)}",
            f"cells added: {len(self.added)}, removed: {len(self.removed)}",
        ]
        lines.extend(f"  REGRESSION {key}" for key in self.regressions)
        lines.extend(
            f"  BUDGET-REGRESSION {key}" for key in self.budget_regressions
        )
        return lines


def _is_sound(rec: Mapping[str, Any]) -> bool:
    return bool(rec.get("sound")) and not rec.get("error")


def diff_records(
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
) -> CampaignDiff:
    """Compare two record maps cell by cell (content-hash aligned)."""
    both = sorted(set(old) & set(new))
    regressions = tuple(
        k for k in both if _is_sound(old[k]) and not _is_sound(new[k])
    )
    fixes = tuple(
        k for k in both if not _is_sound(old[k]) and _is_sound(new[k])
    )
    budget_regressions = tuple(
        k
        for k in both
        if old[k].get("budget_ok") is not False
        and new[k].get("budget_ok") is False
    )
    return CampaignDiff(
        regressions=regressions,
        fixes=fixes,
        budget_regressions=budget_regressions,
        added=tuple(sorted(set(new) - set(old))),
        removed=tuple(sorted(set(old) - set(new))),
    )


def diff_stores(
    old: Union[str, Path, ResultStore], new: Union[str, Path, ResultStore]
) -> CampaignDiff:
    """Diff two campaign stores (paths, URLs, or instances; backends
    may differ -- the diff is over records, not files)."""
    return diff_records(open_store(old).load(), open_store(new).load())
