"""Transit-stub topology generator."""

import networkx as nx
import numpy as np
import pytest

from repro.overlay.dsct import build_dsct_tree
from repro.topology.attach import attach_hosts
from repro.topology.routing import host_rtt_matrix, router_distance_matrix
from repro.topology.transit_stub import transit_stub_backbone


class TestGeneration:
    def test_node_count_and_tiers(self):
        g = transit_stub_backbone(4, 3, 5, rng=1)
        assert g.number_of_nodes() == 4 + 4 * 3 * 5
        tiers = nx.get_node_attributes(g, "tier")
        assert sum(1 for t in tiers.values() if t == "transit") == 4

    def test_connected_positive_latencies(self):
        g = transit_stub_backbone(3, 2, 4, rng=2)
        assert nx.is_connected(g)
        assert all(d["latency"] > 0 for _, _, d in g.edges(data=True))

    def test_reproducible(self):
        a = transit_stub_backbone(3, 2, 4, rng=9)
        b = transit_stub_backbone(3, 2, 4, rng=9)
        assert set(a.edges) == set(b.edges)

    def test_domains_are_labelled(self):
        g = transit_stub_backbone(2, 2, 3, rng=3)
        domains = {
            d for _, d in nx.get_node_attributes(g, "domain").items()
        }
        assert len(domains) == 4  # 2 transit x 2 stubs

    def test_validation(self):
        with pytest.raises(ValueError):
            transit_stub_backbone(1)
        with pytest.raises(ValueError):
            transit_stub_backbone(3, 0, 4)
        with pytest.raises(ValueError):
            transit_stub_backbone(3, 2, 4, extra_stub_edges=-1)


class TestLocalityStructure:
    def test_intra_stub_paths_are_short(self):
        g = transit_stub_backbone(4, 2, 5, rng=4)
        dist = router_distance_matrix(g)
        nodes = sorted(g.nodes)
        domains = nx.get_node_attributes(g, "domain")
        intra, inter = [], []
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                da, db = domains.get(a), domains.get(b)
                if da is None or db is None:
                    continue
                ia, ib = nodes.index(a), nodes.index(b)
                if da == db:
                    intra.append(dist[ia, ib])
                else:
                    inter.append(dist[ia, ib])
        assert np.mean(intra) < np.mean(inter)

    def test_dsct_runs_on_transit_stub(self):
        """The overlay machinery composes with the new underlay."""
        g = transit_stub_backbone(3, 2, 4, rng=5)
        net = attach_hosts(g, 80, rng=5)
        rtt = host_rtt_matrix(net)
        tree = build_dsct_tree(0, list(range(80)), rtt, net.host_router, rng=5)
        assert tree.size == 80
