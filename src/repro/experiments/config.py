"""Experiment configuration objects.

Defaults reproduce the paper's setups; the ``quick()`` constructors
shrink horizons and sweeps for CI-speed runs (used by the test suite;
the benchmark harness uses the full settings).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

__all__ = ["PAPER_UTILIZATIONS", "Fig4Config", "Fig6Config", "TableConfig"]

#: The x-axis of every figure/table: average input rate 0.35 .. 0.95.
PAPER_UTILIZATIONS: tuple[float, ...] = tuple(
    float(x) for x in np.round(np.arange(0.35, 0.951, 0.05), 2)
)


@dataclass(frozen=True)
class Fig4Config:
    """Single regulated end host sweep (Figures 4(a)-(c))."""

    utilizations: Sequence[float] = PAPER_UTILIZATIONS
    horizon: float = 30.0          #: seconds of injected traffic
    dt: float = 5e-4               #: fluid grid resolution
    capacity: float = 1.0
    discipline: str = "adversarial"
    backend: str = "fluid"         #: "fluid" or "des"
    shared_streams: bool = True    #: same stream per group (paper setup)
    seed: int = 2006               #: ICPP year; any fixed seed works
    mtu: float = 2e-3

    @classmethod
    def quick(cls) -> "Fig4Config":
        return cls(
            utilizations=(0.35, 0.55, 0.75, 0.95),
            horizon=6.0,
            dt=1e-3,
        )


@dataclass(frozen=True)
class Fig6Config:
    """Multi-group network sweep (Figures 6(a)-(c))."""

    n_hosts: int = 665
    utilizations: Sequence[float] = PAPER_UTILIZATIONS
    horizon: float = 20.0
    dt: float = 1e-3
    discipline: str = "adversarial"
    shared_streams: bool = True
    host_capacity_range: tuple[float, float] = (4.0, 10.0)
    cluster_k: int = 3
    seed: int = 2006
    mtu: float = 2e-3
    schemes: Sequence[str] = (
        "capacity-aware-dsct",
        "dsct+sigma-rho",
        "dsct+sigma-rho-lambda",
        "capacity-aware-nice",
        "nice+sigma-rho",
        "nice+sigma-rho-lambda",
    )

    @classmethod
    def quick(cls) -> "Fig6Config":
        return cls(
            n_hosts=120,
            utilizations=(0.35, 0.65, 0.95),
            horizon=5.0,
            dt=2e-3,
        )


@dataclass(frozen=True)
class TableConfig:
    """Tree layer number comparison (Tables I-III)."""

    n_hosts: int = 665
    n_groups: int = 3
    utilizations: Sequence[float] = PAPER_UTILIZATIONS
    host_capacity_range: tuple[float, float] = (4.0, 10.0)
    cluster_k: int = 3
    seed: int = 2006

    @classmethod
    def quick(cls) -> "TableConfig":
        return cls(n_hosts=150, utilizations=(0.35, 0.65, 0.95))
