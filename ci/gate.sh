#!/usr/bin/env bash
# Nightly/CI baseline gate: run the tier-1 smoke campaign (the same
# 24-cell matrix tests/test_runtime_campaign.py keeps alive) against
# the pinned baseline store checked in at ci/baseline_smoke, and fail
# on any soundness or perf-budget regression.  Then re-run the same
# matrix through the grouped (structure-of-arrays) evaluator and the
# per-cell evaluator and require byte-identical summaries -- the
# grouped path's bit-identity contract, gated end to end.
#
# Usage: ci/gate.sh [STORE_DIR]
#   STORE_DIR  where to write the fresh campaign store
#              (default: a temporary directory)
#
# Exit status: 0 when the campaign is clean AND the diff against the
# pinned baseline shows no regression AND the grouped/per-cell
# summaries match byte for byte AND telemetry collection is invisible
# to summaries (telemetry-on == telemetry-off == pinned baseline,
# byte for byte, with `scenarios report` rendering the telemetry-on
# store); 1 otherwise (the CLI's --baseline flag gates the first part
# in one shot).
#
# To re-pin the baseline after an intentional change:
#   PYTHONPATH=src python -m repro.experiments.cli scenarios run \
#     --count 24 --seed 11 --no-corpus --store ci/baseline_smoke
set -euo pipefail
cd "$(dirname "$0")/.."

STORE="${1:-$(mktemp -d)/smoke}"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
  scenarios run \
  --count 24 --seed 11 --no-corpus \
  --jobs 2 \
  --store "$STORE" \
  --baseline ci/baseline_smoke

echo "baseline gate: clean (store: $STORE)"

# Grouped vs per-cell bit-identity: same matrix, both evaluators,
# byte-identical summary.json required.
SOA_DIR="$(mktemp -d)"
for variant in group-cells no-group-cells; do
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
    scenarios run \
    --count 24 --seed 11 --no-corpus \
    --"$variant" \
    --store "$SOA_DIR/$variant" >/dev/null
done
if ! cmp "$SOA_DIR/group-cells/summary.json" \
         "$SOA_DIR/no-group-cells/summary.json"; then
  echo "grouped gate: FAILED (grouped and per-cell summaries differ)" >&2
  exit 1
fi
echo "grouped gate: clean (grouped == per-cell, byte-identical summary)"

# Batched vs per-cell realisation: same matrix through the grouped
# evaluator with batch realisation on and off, byte-identical
# summary.json required -- on both store backends (the PR 9 tentpole's
# bit-identity contract, gated end to end).
BATCH_DIR="$(mktemp -d)"
for backend in jsonl sqlite; do
  for variant in batch-realise no-batch-realise; do
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
      scenarios run \
      --count 24 --seed 11 --no-corpus \
      --group-cells --"$variant" \
      --store "$backend:$BATCH_DIR/$backend-$variant" >/dev/null
  done
  if ! cmp "$BATCH_DIR/$backend-batch-realise/summary.json" \
           "$BATCH_DIR/$backend-no-batch-realise/summary.json"; then
    echo "batch-realise gate: FAILED ($backend summaries differ)" >&2
    exit 1
  fi
done
echo "batch-realise gate: clean (batched == per-cell realisation, both backends)"

# Telemetry invisibility: collection is on by default, so the smoke
# store above already carries telemetry; a --no-telemetry rerun of the
# same matrix must produce a byte-identical summary.json, and both
# must still match the pinned baseline byte for byte (telemetry never
# leaks into the determinism surface).
TEL_DIR="$(mktemp -d)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
  scenarios run \
  --count 24 --seed 11 --no-corpus \
  --jobs 2 --no-telemetry \
  --store "$TEL_DIR/off" >/dev/null
if ! cmp "$STORE/summary.json" "$TEL_DIR/off/summary.json"; then
  echo "telemetry gate: FAILED (telemetry-on and -off summaries differ)" >&2
  exit 1
fi
if ! cmp "$STORE/summary.json" ci/baseline_smoke/summary.json; then
  echo "telemetry gate: FAILED (summary drifted from pinned baseline)" >&2
  exit 1
fi
if [ -e "$TEL_DIR/off/telemetry.jsonl" ]; then
  echo "telemetry gate: FAILED (--no-telemetry store has telemetry.jsonl)" >&2
  exit 1
fi

# The report lens must render the telemetry the smoke run collected.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
  scenarios report "$STORE" \
  | grep "Phase breakdown per backend" >/dev/null || {
  echo "telemetry gate: FAILED (scenarios report missing phase breakdown)" >&2
  exit 1
}
echo "telemetry gate: clean (on == off == pinned baseline, report renders)"

# -- chaos gate: retries never change results ------------------------------
# Re-run the same 24-cell smoke under deterministic fault injection
# (worker kills, kernel raises, delays, torn/failed store writes at a
# >=10% rate) with bounded retries.  The campaign must recover every
# cell and write a summary.json byte-identical to the pinned baseline
# -- on both store backends.  This is the PR 8 invariant: cell seeds
# derive from the spec alone, so retries are invisible to results.
CHAOS_DIR="$(mktemp -d)"
for backend in jsonl sqlite; do
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
    scenarios run \
    --count 24 --seed 11 --no-corpus \
    --jobs 2 --executor process \
    --retries 3 --cell-timeout 30 --inject-faults 7:0.15 \
    --store "$backend:$CHAOS_DIR/$backend" >/dev/null
  if ! cmp "$CHAOS_DIR/$backend/summary.json" ci/baseline_smoke/summary.json; then
    echo "chaos gate: FAILED ($backend summary diverged under fault injection)" >&2
    exit 1
  fi
done
echo "chaos gate: clean (fault-injected summaries byte-identical, both backends)"

# -- coordinator chaos gate: leases never change results -------------------
# The same 24-cell smoke through the lease-based coordinator: 2
# workers, deterministic fault injection SIGKILLing workers mid-lease
# (real kills -- `scenarios work` arms them).  Expired leases must be
# stolen, split, and re-run until the store converges to a
# summary.json byte-identical to the pinned baseline -- on both store
# backends -- and `scenarios report` must render the lease ledger the
# recovery left behind.
COORD_DIR="$(mktemp -d)"
for backend in jsonl sqlite; do
  PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
    scenarios run \
    --count 24 --seed 11 --no-corpus \
    --coordinator 2 --lease-ttl 5 \
    --retries 3 --inject-faults 7:0.15 \
    --store "$backend:$COORD_DIR/$backend" >/dev/null
  if ! cmp "$COORD_DIR/$backend/summary.json" ci/baseline_smoke/summary.json; then
    echo "coordinator gate: FAILED ($backend summary diverged under worker kills)" >&2
    exit 1
  fi
done
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.experiments.cli \
  scenarios report "sqlite:$COORD_DIR/sqlite" \
  | grep "Lease ledger" >/dev/null || {
  echo "coordinator gate: FAILED (scenarios report missing lease ledger)" >&2
  exit 1
}
echo "coordinator gate: clean (worker-killing chaos byte-identical, both backends)"
