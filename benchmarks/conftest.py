"""Shared fixtures and artefact reporting for the benchmark harness.

Every benchmark regenerates one paper artefact (figure panel, table, or
theory result) at full paper scale, prints it in the paper's layout,
and asserts the qualitative *shape* criteria from DESIGN.md.  Absolute
delays differ from the paper's ns-2/SPARC numbers by construction; the
shapes (who wins, crossover position, growth trends) must hold.

Benchmarks run once per artefact (``benchmark.pedantic`` with a single
round) -- they are measurements of the reproduction pipeline, not
micro-benchmarks; kernel-level micro-benchmarks live in
``test_bench_kernels.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Machine-readable benchmark trajectory file, written at the repo root
#: so successive PRs accumulate comparable first-class numbers.
BENCH_PR3_PATH = Path(__file__).resolve().parent.parent / "BENCH_pr3.json"


@pytest.fixture(scope="session")
def artifact_report():
    """Collects rendered artefacts and prints them at session end."""
    chunks: list[str] = []
    yield chunks
    if chunks:
        print("\n" + "\n\n".join(chunks))


@pytest.fixture(scope="session")
def bench_pr3():
    """Collects PR-3 perf metrics; merged into ``BENCH_pr3.json``.

    Sections are merged (not replaced wholesale) so an opt-in
    ``-m scenario`` run can add the thousand-cell campaign numbers to a
    file produced by a default run.
    """
    data: dict = {}
    yield data
    if not data:
        return
    existing: dict = {}
    if BENCH_PR3_PATH.exists():
        try:
            existing = json.loads(BENCH_PR3_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(data)
    existing["pr"] = 3
    BENCH_PR3_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_pr3.json updated: {sorted(data)}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
