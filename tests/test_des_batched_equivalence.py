"""Batched-vs-legacy DES engine equivalence regression.

The batched engine (``repro.simulation.batched``) must reproduce the
legacy per-packet event chain's measured delays.  The contract this
suite enforces, cell by cell:

* **Bit-identical** per-flow delay statistics (worst/mean/percentiles/
  counts) for every FIFO and priority discipline run, and for
  ``sigma-rho`` adversarial runs off the tie grid -- the float
  arithmetic of both engines is sequenced identically.
* **Adversarial hold-release refinement**: at instants where the MUX
  backlog touches exactly zero, the legacy engine's release decision
  was an event-sequence race (history-dependent); the batched engine
  releases deterministically, matching the fluid backend's empty-queue
  semantics (``fluid_next_empty``).  Batched busy periods therefore
  *refine* legacy ones, so batched delays are pointwise <= legacy
  delays, with equality away from exact zero-backlog ties.  Staggered
  vacation traffic is paced at the link rate inside windows, making
  such ties structural -- which is also why the legacy race was
  *inflating* the adversarial measurement on exactly the cells the
  paper showcases (batched adversarial == FIFO there, as the staggering
  theory predicts: no MUX pileup).
* **Verdict equality**: per-cell soundness verdicts agree across the
  full curated corpus (``backend="des"``/``"tree_des"`` vs their
  ``*_legacy`` twins), and the batched engine never measures *larger*.
* **Event-count reduction**: batching must actually remove events.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.scenarios import adversarial_corpus
from repro.scenarios.runner import evaluate_cell, run_batch
from repro.simulation.batched import vacation_departures
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.engine import Simulator
from repro.simulation.flow import AudioSource, PacketTrace, VBRVideoSource
from repro.simulation.host_sim import simulate_regulated_host
from repro.simulation.measures import DelayRecorder
from repro.simulation.regulator_sim import VacationComponent
from repro.simulation.tree_sim import simulate_multicast_tree


def _stats_equal(a, b) -> bool:
    return (
        a.count == b.count
        and a.worst == b.worst
        and a.mean == b.mean
        and a.p50 == b.p50
        and a.p99 == b.p99
    )


def _stats_le(a_batched, b_legacy) -> bool:
    """Pointwise-refinement consequence: batched stats never larger."""
    return (
        a_batched.count == b_legacy.count
        and a_batched.worst <= b_legacy.worst
        and a_batched.mean <= b_legacy.mean + 1e-15
    )


@pytest.fixture(scope="module")
def video_traces():
    rho = 0.3
    trace = VBRVideoSource(rho).generate(2.0, rng=1).fragment(0.002)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
    return [trace] * 3, envs


# ----------------------------------------------------------------------
# Host level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
@pytest.mark.parametrize("discipline", ["fifo", "priority"])
def test_host_bit_identical_fifo_priority(video_traces, mode, discipline):
    traces, envs = video_traces
    leg = simulate_regulated_host(
        traces, envs, mode=mode, discipline=discipline,
        stagger_phase=0.37, engine="legacy",
    )
    bat = simulate_regulated_host(
        traces, envs, mode=mode, discipline=discipline,
        stagger_phase=0.37, engine="batched",
    )
    assert all(_stats_equal(a, b) for a, b in zip(bat.per_flow, leg.per_flow))
    assert bat.worst_case_delay == leg.worst_case_delay


def test_host_sigma_rho_adversarial_bit_identical(video_traces):
    traces, envs = video_traces
    leg = simulate_regulated_host(
        traces, envs, mode="sigma-rho", discipline="adversarial",
        engine="legacy",
    )
    bat = simulate_regulated_host(
        traces, envs, mode="sigma-rho", discipline="adversarial",
        engine="batched",
    )
    assert all(_stats_equal(a, b) for a, b in zip(bat.per_flow, leg.per_flow))


def test_host_vacation_adversarial_refinement(video_traces):
    """Zero-backlog release refines the legacy race: pointwise <=, and
    the staggered cell collapses onto its FIFO measurement (no MUX
    pileup -- the paper's own claim)."""
    traces, envs = video_traces
    leg = simulate_regulated_host(
        traces, envs, mode="sigma-rho-lambda", discipline="adversarial",
        engine="legacy",
    )
    bat = simulate_regulated_host(
        traces, envs, mode="sigma-rho-lambda", discipline="adversarial",
        engine="batched",
    )
    fifo = simulate_regulated_host(
        traces, envs, mode="sigma-rho-lambda", discipline="fifo",
        engine="batched",
    )
    assert all(_stats_le(b, a) for b, a in zip(bat.per_flow, leg.per_flow))
    # Sandwich: fifo <= adversarial(batched) <= adversarial(legacy).
    assert fifo.worst_case_delay <= bat.worst_case_delay + 1e-15
    assert bat.worst_case_delay <= leg.worst_case_delay + 1e-15


def test_host_batched_slashes_events(video_traces):
    traces, envs = video_traces
    leg = simulate_regulated_host(
        traces, envs, mode="sigma-rho-lambda", discipline="adversarial",
        engine="legacy",
    )
    bat = simulate_regulated_host(
        traces, envs, mode="sigma-rho-lambda", discipline="adversarial",
        engine="batched",
    )
    # The primed fast path runs one kernel pass per busy train + one
    # release per MUX busy period -- well below per-packet event counts
    # (the margin grows with the horizon; this fixture is a short one).
    assert bat.events < leg.events / 3
    assert bat.cancelled_events == 0


# ----------------------------------------------------------------------
# Chain and tree level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
def test_chain_priority_bit_identical(video_traces, mode):
    traces, envs = video_traces
    leg = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs, mode=mode,
        discipline="priority", propagation=[0.0, 0.003], engine="legacy",
    )
    bat = simulate_regulated_chain(
        traces[0], [traces[1:]] * 2, envs, mode=mode,
        discipline="priority", propagation=[0.0, 0.003], engine="batched",
    )
    assert _stats_equal(bat.tagged_stats, leg.tagged_stats)
    assert bat.worst_case_delay == leg.worst_case_delay


def test_chain_adversarial_refinement(video_traces):
    traces, envs = video_traces
    for mode in ("sigma-rho", "sigma-rho-lambda"):
        leg = simulate_regulated_chain(
            traces[0], [traces[1:]] * 2, envs, mode=mode,
            discipline="adversarial", engine="legacy",
        )
        bat = simulate_regulated_chain(
            traces[0], [traces[1:]] * 2, envs, mode=mode,
            discipline="adversarial", engine="batched",
        )
        assert _stats_le(bat.tagged_stats, leg.tagged_stats)


@pytest.fixture(scope="module")
def small_tree():
    from repro.overlay.groups import MultiGroupNetwork
    from repro.topology.attach import attach_hosts
    from repro.topology.transit_stub import transit_stub_backbone

    g = transit_stub_backbone(3, 2, 3, rng=1)
    net = attach_hosts(g, 10, rng=2)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=3)
    tree = mgn.build_tree(0, "dsct", rng=4)
    traces = [
        VBRVideoSource(0.25).generate(0.8, rng=i).fragment(0.002)
        for i in range(3)
    ]
    envs = [
        ArrivalEnvelope(max(t.empirical_sigma(0.25), 1e-6), 0.25)
        for t in traces
    ]
    return tree, mgn.latency, traces, envs


def test_tree_fifo_bit_identical(small_tree):
    tree, latency, traces, envs = small_tree
    leg = simulate_multicast_tree(
        [tree] * 3, 0, traces, envs, latency, mode="sigma-rho",
        discipline="fifo", engine="legacy",
    )
    bat = simulate_multicast_tree(
        [tree] * 3, 0, traces, envs, latency, mode="sigma-rho",
        discipline="fifo", engine="batched",
    )
    assert bat.per_receiver_worst == leg.per_receiver_worst


def test_tree_adversarial_refinement(small_tree):
    tree, latency, traces, envs = small_tree
    leg = simulate_multicast_tree(
        [tree] * 3, 0, traces, envs, latency, mode="sigma-rho",
        discipline="adversarial", engine="legacy",
    )
    bat = simulate_multicast_tree(
        [tree] * 3, 0, traces, envs, latency, mode="sigma-rho",
        discipline="adversarial", engine="batched",
    )
    assert set(bat.per_receiver_worst) == set(leg.per_receiver_worst)
    for host, worst in bat.per_receiver_worst.items():
        assert worst <= leg.per_receiver_worst[host] + 1e-15
    assert bat.events < leg.events


# ----------------------------------------------------------------------
# The vacation-departure kernel against the legacy component
# ----------------------------------------------------------------------
def _legacy_vacation_departures(times, sizes, regulator, offset, out_rate):
    sim = Simulator()

    class _Tap:
        def __init__(self):
            self.deps = []

        def receive(self, pkt):
            self.deps.append(sim.now)

    tap = _Tap()
    comp = VacationComponent(sim, regulator, tap, offset=offset, out_rate=out_rate)
    from repro.simulation.host_sim import inject_trace

    inject_trace(sim, PacketTrace(times, sizes), 0, comp)
    sim.run()
    return np.asarray(tap.deps)


@pytest.mark.parametrize("offset", [0.0, 0.013, 0.21])
def test_vacation_kernel_matches_legacy_component(offset):
    rho = 0.3
    trace = AudioSource(rho).generate(2.0, rng=5).fragment(0.002)
    env = ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)
    plan = AdaptiveController([env] * 2, 1.0).build_stagger_plan()
    reg = plan.regulators[0]
    legacy = _legacy_vacation_departures(
        trace.times, trace.sizes, reg, offset, 1.0
    )
    deps, trains = vacation_departures(
        trace.times, trace.sizes, reg, offset=offset, out_rate=1.0
    )
    assert np.array_equal(deps, legacy)
    assert 0 < trains <= len(trace)


def test_vacation_kernel_oversize_packet_rejected():
    env = ArrivalEnvelope(0.05, 0.3)
    plan = AdaptiveController([env] * 2, 1.0).build_stagger_plan()
    reg = plan.regulators[0]
    big = reg.working_period * 2.0
    with pytest.raises(ValueError, match="working period"):
        vacation_departures(
            np.array([0.1]), np.array([big]), reg, offset=0.0, out_rate=1.0
        )


def test_vacation_kernel_empty_trace():
    env = ArrivalEnvelope(0.05, 0.3)
    plan = AdaptiveController([env] * 2, 1.0).build_stagger_plan()
    deps, trains = vacation_departures(
        np.empty(0), np.empty(0), plan.regulators[0]
    )
    assert deps.size == 0 and trains == 0


# ----------------------------------------------------------------------
# Scenario level: the curated corpus, batched vs *_legacy backends
# ----------------------------------------------------------------------
def _corpus_des_cells():
    return [
        sc
        for sc in adversarial_corpus()
        if sc.backend in ("des", "tree_des")
    ]


@pytest.mark.parametrize(
    "scenario", _corpus_des_cells(), ids=lambda sc: sc.name
)
def test_corpus_batched_vs_legacy_backend(scenario):
    # Same name and seed: trace realisation is a function of
    # (seed, name), so the twin differs in the engine alone.
    legacy = dataclasses.replace(
        scenario, backend=scenario.backend + "_legacy"
    )
    cell_b = evaluate_cell(scenario)
    cell_l = evaluate_cell(legacy)
    # Identical realisation facts: same effective mode, hop accounting,
    # quantisation slack, propagation and packet population.
    assert cell_b.eff_mode == cell_l.eff_mode
    assert cell_b.hops == cell_l.hops
    assert cell_b.propagation_total == cell_l.propagation_total
    assert cell_b.quant_eps == cell_l.quant_eps
    assert cell_b.sigmas == cell_l.sigmas and cell_b.rhos == cell_l.rhos
    # Delay refinement: never larger, equal off the zero-backlog ties.
    assert cell_b.measured <= cell_l.measured + 1e-12
    # Verdicts agree (both must be sound against the identical bound).
    report = run_batch([scenario, legacy])
    assert [o.sound for o in report.outcomes] == [True, True]
    assert report.outcomes[0].bound == report.outcomes[1].bound


def test_des_legacy_fluid_fallback_matches():
    """A lambda cell the DES cannot resolve falls back to the fluid
    backend identically under both DES backends."""
    base = dataclasses.replace(
        next(sc for sc in adversarial_corpus() if sc.name == "des-host-lambda"),
        name="fallback-probe",
        utilization=0.2,  # huge windows -> tiny mtu -> fluid fallback
    )
    legacy = dataclasses.replace(
        base, name="fallback-probe-legacy", backend="des_legacy"
    )
    cell_b = evaluate_cell(base)
    cell_l = evaluate_cell(legacy)
    if cell_b.eff_backend == "fluid":
        assert cell_l.eff_backend == "fluid"
        assert cell_b.measured == cell_l.measured


# ----------------------------------------------------------------------
# Hypothesis: random (off-grid) traces are bit-identical
# ----------------------------------------------------------------------
@st.composite
def _random_traces(draw):
    k = draw(st.integers(2, 3))
    n = draw(st.integers(3, 40))
    traces = []
    for f in range(k):
        gaps = draw(
            st.lists(
                st.floats(1e-4, 0.15, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        sizes = draw(
            st.lists(
                st.floats(1e-3, 0.02, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        times = np.cumsum(np.asarray(gaps))
        traces.append(PacketTrace(times, np.asarray(sizes)))
    rho = draw(st.floats(0.1, 0.3))
    envs = [
        ArrivalEnvelope(max(tr.empirical_sigma(rho), 1e-6), rho)
        for tr in traces
    ]
    return traces, envs


@settings(max_examples=20, deadline=None)
@given(data=_random_traces(), mode=st.sampled_from(["sigma-rho", "sigma-rho-lambda"]))
def test_hypothesis_host_fifo_priority_bit_identical(data, mode):
    traces, envs = data
    for discipline in ("fifo", "priority"):
        try:
            leg = simulate_regulated_host(
                traces, envs, mode=mode, discipline=discipline, engine="legacy"
            )
        except ValueError:
            # Packet exceeds the vacation working period: the batched
            # engine must reject the same configurations.
            with pytest.raises(ValueError, match="working period"):
                simulate_regulated_host(
                    traces, envs, mode=mode, discipline=discipline,
                    engine="batched",
                )
            continue
        bat = simulate_regulated_host(
            traces, envs, mode=mode, discipline=discipline, engine="batched"
        )
        assert all(
            _stats_equal(a, b) for a, b in zip(bat.per_flow, leg.per_flow)
        )


@settings(max_examples=20, deadline=None)
@given(data=_random_traces())
def test_hypothesis_host_adversarial_refinement(data):
    traces, envs = data
    for mode in ("sigma-rho", "sigma-rho-lambda"):
        try:
            leg = simulate_regulated_host(
                traces, envs, mode=mode, discipline="adversarial",
                engine="legacy",
            )
        except ValueError:
            with pytest.raises(ValueError, match="working period"):
                simulate_regulated_host(
                    traces, envs, mode=mode, discipline="adversarial",
                    engine="batched",
                )
            continue
        bat = simulate_regulated_host(
            traces, envs, mode=mode, discipline="adversarial",
            engine="batched",
        )
        assert all(
            _stats_le(b, a) for b, a in zip(bat.per_flow, leg.per_flow)
        )
