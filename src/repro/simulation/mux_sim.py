"""The work-conserving multiplexer (general MUX) as a DES component.

Each group end host is "equipped with multiplexers (MUX) to control the
input flows ... merge the flows arriving at its two or more input links
into its single output link" (Section III).  The theory assumes a
*general* MUX: work-conserving at rate ``C`` with an arbitrary service
discipline ("a packet of one flow may have priority over a packet of
another flow").  The bounds of Theorems 1/2 and Remark 1 hold for every
such discipline, so the worst-case measurements use the adversarial
one: serve the tagged flow last (static priority).  FIFO is available
for comparison (its delays are no larger, as a property test verifies).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Mapping, Optional

from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.utils.validation import check_positive

__all__ = ["MuxServer"]


class MuxServer:
    """Work-conserving server of rate ``capacity`` with pluggable discipline.

    Parameters
    ----------
    sim:
        The simulator.
    capacity:
        Service rate ``C`` (1.0 under the paper's normalisation).
    sink:
        Downstream component receiving served packets, or a mapping
        ``flow_id -> component`` to demultiplex (forwarding to per-flow
        next hops in a tree).
    discipline:
        ``"fifo"``, ``"priority"`` or ``"adversarial"``.

        The *general MUX* of the paper guarantees nothing about service
        order, so the worst-case delay of a bit is the time until the
        aggregate backlog next empties (it may be served dead last,
        behind later arrivals of every flow -- this is the scenario that
        attains Remark 1's ``sum sigma_i / (C - sum rho_i)``).  The
        ``"adversarial"`` discipline realises exactly that measurement:
        packets are *served* in FIFO order (the work-conserving schedule
        is discipline-invariant in aggregate) but *delivered downstream*
        at the instant the queue empties, which is each packet's worst
        feasible departure time.
    priorities:
        For the priority discipline: ``flow_id -> priority`` (lower
        serves first).  Missing flows default to priority 0.  To measure
        the worst case of flow *f*, give *f* the largest value.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        sink,
        *,
        discipline: str = "fifo",
        priorities: Optional[Mapping[int, int]] = None,
    ):
        if discipline not in ("fifo", "priority", "adversarial"):
            raise ValueError(f"unknown discipline {discipline!r}")
        self.sim = sim
        self.capacity = check_positive(capacity, "capacity")
        self.sink = sink
        self.discipline = discipline
        self.priorities = dict(priorities or {})
        self._heap: list[tuple[int, int, Packet]] = []
        self._seq = itertools.count()
        self._busy = False
        self._batch: list[Packet] = []  # adversarial: held until queue empties
        self.served_count = 0
        self.served_data = 0.0

    # -- queue ordering ----------------------------------------------------
    def _key(self, packet: Packet) -> int:
        if self.discipline in ("fifo", "adversarial"):
            return 0  # sequence number alone orders FIFO
        return self.priorities.get(packet.flow_id, 0)

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    @property
    def backlog(self) -> float:
        return sum(p.size for _, _, p in self._heap)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        heapq.heappush(self._heap, (self._key(packet), next(self._seq), packet))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._heap:
            return
        self._busy = True
        _, _, pkt = heapq.heappop(self._heap)
        self.sim.schedule_in(pkt.size / self.capacity, self._finish, pkt)

    def _finish(self, pkt: Packet) -> None:
        self._busy = False
        self.served_count += 1
        self.served_data += pkt.size
        if self.discipline == "adversarial":
            # Hold delivery until the queue empties: that instant is the
            # worst feasible departure time of every packet in the busy
            # period (the general-MUX worst case the paper bounds).
            self._batch.append(pkt)
            if not self._heap:
                batch, self._batch = self._batch, []
                for held in batch:
                    self._route(held)
        else:
            self._route(pkt)
        self._start_next()

    def _route(self, pkt: Packet) -> None:
        sink = self.sink
        if isinstance(sink, Mapping):
            target = sink.get(pkt.flow_id)
            if target is not None:
                target.receive(pkt)
            return
        sink.receive(pkt)
