"""Latency-rate service curves and the classic bounds."""

import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.calculus.service import (
    LatencyRateServer,
    backlog_bound,
    delay_bound,
    output_envelope,
)


class TestLatencyRateServer:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyRateServer(rate=0.0)
        with pytest.raises(ValueError):
            LatencyRateServer(rate=1.0, latency=-1.0)

    def test_as_curve(self):
        s = LatencyRateServer(rate=2.0, latency=1.0)
        c = s.as_curve(3.0)
        assert c(1.0) == pytest.approx(0.0)
        assert c(3.0) == pytest.approx(4.0)

    def test_as_curve_latency_beyond_horizon(self):
        s = LatencyRateServer(rate=2.0, latency=5.0)
        c = s.as_curve(3.0)
        assert c.total == 0.0

    def test_concatenation_rule(self):
        # beta_{R1,T1} (x) beta_{R2,T2} = beta_{min R, T1+T2}.
        a = LatencyRateServer(rate=2.0, latency=0.5)
        b = LatencyRateServer(rate=1.0, latency=0.25)
        c = a.concatenate(b)
        assert c.rate == pytest.approx(1.0)
        assert c.latency == pytest.approx(0.75)


class TestBounds:
    def test_delay_bound_formula(self):
        env = ArrivalEnvelope(2.0, 0.5)
        srv = LatencyRateServer(rate=1.0, latency=0.1)
        assert delay_bound(env, srv) == pytest.approx(0.1 + 2.0)

    def test_delay_unbounded_when_unstable(self):
        env = ArrivalEnvelope(1.0, 2.0)
        srv = LatencyRateServer(rate=1.0)
        assert delay_bound(env, srv) == float("inf")

    def test_backlog_bound_formula(self):
        env = ArrivalEnvelope(2.0, 0.5)
        srv = LatencyRateServer(rate=1.0, latency=0.2)
        assert backlog_bound(env, srv) == pytest.approx(2.0 + 0.1)

    def test_output_envelope_grows_burst(self):
        env = ArrivalEnvelope(2.0, 0.5)
        srv = LatencyRateServer(rate=1.0, latency=0.2)
        out = output_envelope(env, srv)
        assert out.sigma == pytest.approx(2.1)
        assert out.rho == pytest.approx(0.5)

    def test_output_envelope_rejects_unstable(self):
        with pytest.raises(ValueError):
            output_envelope(ArrivalEnvelope(1.0, 2.0), LatencyRateServer(rate=1.0))

    def test_zero_latency_server_keeps_envelope(self):
        env = ArrivalEnvelope(1.0, 0.4)
        out = output_envelope(env, LatencyRateServer(rate=1.0))
        assert out == env
