"""MulticastTree invariants (+ hypothesis on random parent maps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.tree import MulticastTree


def chain_tree(n):
    return MulticastTree(root=0, parent={i: i - 1 for i in range(1, n)})


def star_tree(n):
    return MulticastTree(root=0, parent={i: 0 for i in range(1, n)})


class TestConstruction:
    def test_lone_root(self):
        t = MulticastTree(root=5, parent={})
        assert t.height == 1
        assert t.size == 1
        assert t.critical_path() == [5]

    def test_self_parent_normalised(self):
        t = MulticastTree(root=0, parent={0: 0, 1: 0})
        assert 0 not in t.parent

    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree(root=0, parent={0: 1, 1: 0})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle|disconnected"):
            MulticastTree(root=0, parent={1: 2, 2: 1})

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            MulticastTree(root=0, parent={5: 6})


class TestMetrics:
    def test_chain_height(self):
        assert chain_tree(5).height == 5

    def test_star_height(self):
        assert star_tree(5).height == 2

    def test_critical_path_chain(self):
        assert chain_tree(4).critical_path() == [0, 1, 2, 3]

    def test_critical_path_deterministic_ties(self):
        t = star_tree(4)
        assert t.critical_path() == [0, 1]  # smallest leaf wins ties

    def test_fanout(self):
        t = star_tree(4)
        assert t.fanout()[0] == 3
        assert t.max_fanout() == 3
        assert chain_tree(3).max_fanout() == 1

    def test_depth_and_path(self):
        t = chain_tree(4)
        assert t.depth(3) == 3
        assert t.path_from_root(2) == [0, 1, 2]

    def test_members(self):
        assert chain_tree(3).members() == {0, 1, 2}

    def test_link_stress(self):
        t = star_tree(3)
        host_router = [0, 1, 1]
        # Edges (1->0) and (2->0): router pairs (0,1) twice -> stress 2.
        assert t.link_stress(host_router) == pytest.approx(2.0)

    def test_propagation_along_path(self):
        lat = np.array([[0.0, 1.0, 3.0], [1.0, 0.0, 1.5], [3.0, 1.5, 0.0]])
        t = chain_tree(3)
        assert t.total_propagation_to(2, lat) == pytest.approx(1.0 + 1.5)

    def test_stretch_of_chain_exceeds_one(self):
        lat = np.array([[0.0, 1.0, 1.2], [1.0, 0.0, 1.0], [1.2, 1.0, 0.0]])
        t = chain_tree(3)
        # Overlay path to host 2 is 2.0 vs direct 1.2.
        assert t.stretch(lat) > 1.0

    def test_relabel(self):
        t = chain_tree(3).relabel({0: 10, 1: 11, 2: 12})
        assert t.root == 10
        assert t.members() == {10, 11, 12}
        assert t.height == 3


@st.composite
def random_parent_maps(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    parent = {}
    for m in range(1, n):
        parent[m] = draw(st.integers(min_value=0, max_value=m - 1))
    return n, parent


@given(random_parent_maps())
@settings(max_examples=80, deadline=None)
def test_random_trees_satisfy_invariants(data):
    n, parent = data
    t = MulticastTree(root=0, parent=parent)
    assert t.size == n
    # Height equals 1 + max depth; critical path length equals height.
    assert len(t.critical_path()) == t.height
    # Children counts sum to n - 1 (every non-root has one parent).
    assert sum(t.fanout().values()) == n - 1
    # Every member's path ends at the root.
    for m in list(t.members())[:10]:
        assert t.path_from_root(m)[0] == 0
