"""Regulator parameterisations: the Section-III identities (+ hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.regulator import (
    SigmaRhoLambdaRegulator,
    SigmaRhoRegulator,
    control_factor,
)

rhos = st.floats(min_value=0.01, max_value=0.95)
sigmas = st.floats(min_value=1e-4, max_value=10.0)


class TestControlFactor:
    def test_equation_1(self):
        assert control_factor(0.5) == pytest.approx(2.0)
        assert control_factor(0.25) == pytest.approx(4.0 / 3.0)

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.1, 1.5])
    def test_domain(self, rho):
        with pytest.raises(ValueError):
            control_factor(rho)


class TestSigmaRhoRegulator:
    def test_envelope(self):
        r = SigmaRhoRegulator(0.5, 0.2)
        assert r.envelope() == ArrivalEnvelope(0.5, 0.2)

    def test_conformant_input_passes_undelayed(self):
        r = SigmaRhoRegulator(0.5, 0.2)
        assert r.delay_bound_for_input(ArrivalEnvelope(0.3, 0.2)) == 0.0

    def test_excess_burst_delay(self):
        r = SigmaRhoRegulator(0.5, 0.2)
        # (sigma* - sigma) / rho = 0.5 / 0.2
        assert r.delay_bound_for_input(
            ArrivalEnvelope(1.0, 0.2)
        ) == pytest.approx(2.5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SigmaRhoRegulator(0.0, 0.5)
        with pytest.raises(ValueError):
            SigmaRhoRegulator(1.0, 1.0)


class TestSigmaRhoLambdaRegulator:
    def test_paper_identities(self):
        """W = sigma/(1-rho), V = sigma/rho, P = sigma*lambda/rho."""
        r = SigmaRhoLambdaRegulator(0.06, 0.25)
        assert r.lam == pytest.approx(1.0 / 0.75)
        assert r.working_period == pytest.approx(0.06 / 0.75)
        assert r.vacation == pytest.approx(0.06 / 0.25)
        assert r.regulator_period == pytest.approx(0.06 * r.lam / 0.25)
        assert r.regulator_period == pytest.approx(r.working_period + r.vacation)

    def test_duty_cycle_equals_rho_at_min_lambda(self):
        # W/P = rho when lambda = 1/(1-rho): the regulator sustains
        # exactly the flow's average rate.
        r = SigmaRhoLambdaRegulator(0.1, 0.3)
        assert r.duty_cycle == pytest.approx(0.3)

    def test_lambda_below_minimum_rejected(self):
        with pytest.raises(ValueError, match="conservation"):
            SigmaRhoLambdaRegulator(0.1, 0.5, lam=1.5)

    def test_custom_lambda_lengthens_vacation(self):
        base = SigmaRhoLambdaRegulator(0.1, 0.5)
        longer = SigmaRhoLambdaRegulator(0.1, 0.5, lam=3.0)
        assert longer.vacation > base.vacation
        assert longer.working_period == pytest.approx(base.working_period)

    def test_lemma1_delay_bound(self):
        r = SigmaRhoLambdaRegulator(0.05, 0.2)
        # (sigma* - sigma)+/rho + 2 lambda sigma / rho
        d = r.delay_bound_for_input(ArrivalEnvelope(0.08, 0.2))
        expected = 0.03 / 0.2 + 2 * r.lam * 0.05 / 0.2
        assert d == pytest.approx(expected)

    def test_backlog_bound(self):
        r = SigmaRhoLambdaRegulator(0.05, 0.2)
        assert r.backlog_bound() == pytest.approx((1 + r.lam) * 0.05)

    def test_windows_tile_period(self):
        r = SigmaRhoLambdaRegulator(0.1, 0.25)
        ws = list(r.windows(horizon=3 * r.regulator_period))
        assert len(ws) == 3
        for i, (s, e) in enumerate(ws):
            assert s == pytest.approx(i * r.regulator_period)
            assert e - s == pytest.approx(r.working_period)

    def test_windows_with_offset(self):
        r = SigmaRhoLambdaRegulator(0.1, 0.25)
        ws = list(r.windows(horizon=r.regulator_period, offset=0.01))
        assert ws[0][0] == pytest.approx(0.01)

    def test_is_on(self):
        r = SigmaRhoLambdaRegulator(0.1, 0.25)
        assert r.is_on(r.working_period * 0.5)
        assert not r.is_on(r.working_period + 1e-6)
        assert not r.is_on(0.0, offset=1.0)  # before the first window

    @given(sigmas, rhos)
    @settings(max_examples=100, deadline=None)
    def test_identities_hold_everywhere(self, sigma, rho):
        r = SigmaRhoLambdaRegulator(sigma, rho)
        assert r.vacation == pytest.approx(sigma / rho, rel=1e-9)
        assert r.working_period + r.vacation == pytest.approx(
            r.regulator_period, rel=1e-9
        )
        # Conservation: output capacity over a period covers the input.
        assert r.working_period * 1.0 >= sigma + 0.0 - 1e-12

    @given(sigmas, rhos)
    @settings(max_examples=100, deadline=None)
    def test_vacation_approaches_k_minus_1_windows(self, sigma, rho):
        """Section III: at rho -> 1/K, V ~ (K-1) W (windows tile)."""
        k = max(int(1.0 / rho), 2)
        rho_heavy = 1.0 / k
        if rho_heavy >= 1.0:
            return
        r = SigmaRhoLambdaRegulator(sigma, rho_heavy * 0.999)
        assert r.vacation >= (k - 1) * r.working_period - 1e-9
