"""The persistent result store: keys, resume, corruption, diffing.

The store is the campaign's memory: content-hashed keys make resume
and cross-campaign diffing order-independent, and a half-written line
(killed campaign, manual edit) must quarantine rather than kill the
next run.
"""

import json

import pytest

from repro.runtime.store import (
    ResultStore,
    cell_key,
    diff_records,
    diff_stores,
    spec_fingerprint,
)
from repro.scenarios.spec import Scenario

pytestmark = pytest.mark.runtime


def _sc(**kw):
    base = dict(name="cell", kinds=("audio",) * 2, utilization=0.5, seed=3)
    base.update(kw)
    return Scenario(**base)


def _rec(key, *, sound=True, error=None, budget_ok=True, tightness=0.5):
    return {
        "key": key,
        "sound": sound,
        "error": error,
        "budget_ok": budget_ok,
        "tightness": tightness,
        "wall_time": 0.1,
    }


class TestKeys:
    def test_key_covers_every_field_including_seed(self):
        a, b = _sc(seed=1), _sc(seed=2)
        assert cell_key(a) != cell_key(b)
        assert cell_key(a) == cell_key(_sc(seed=1))

    def test_fingerprint_ignores_seed_only(self):
        assert spec_fingerprint(_sc(seed=1)) == spec_fingerprint(_sc(seed=2))
        assert spec_fingerprint(_sc(utilization=0.5)) != spec_fingerprint(
            _sc(utilization=0.6)
        )
        assert spec_fingerprint(_sc(name="a")) != spec_fingerprint(_sc(name="b"))

    def test_keys_are_short_hex(self):
        key = cell_key(_sc())
        assert len(key) == 16
        int(key, 16)  # parses as hex

    def test_verdict_knobs_never_rekey_or_reseed(self):
        """perf_budget moves the verdict threshold, not the measurement:
        changing it must not invalidate stored cells or reseed traces."""
        plain, budgeted = _sc(), _sc(perf_budget=60.0)
        assert cell_key(plain) == cell_key(budgeted)
        assert spec_fingerprint(plain) == spec_fingerprint(budgeted)


class TestStoreRoundtrip:
    def test_append_load(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        store.append(_rec("aa"))
        store.append(_rec("bb", sound=False))
        records = store.load()
        assert set(records) == {"aa", "bb"}
        assert records["bb"]["sound"] is False
        assert records["aa"]["v"] == 1

    def test_nonfinite_floats_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append({"key": "inf", "bound": float("inf"), "measured": float("nan")})
        rec = store.load()["inf"]
        assert rec["bound"] == float("inf")
        assert rec["measured"] != rec["measured"]  # NaN

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(_rec("aa", sound=False))
        store.append(_rec("aa", sound=True))
        assert store.load()["aa"]["sound"] is True

    def test_keyless_record_rejected_on_write(self, tmp_path):
        with pytest.raises(ValueError, match="key"):
            ResultStore(tmp_path).append({"sound": True})


class TestCorruption:
    def test_corrupt_lines_quarantined_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(_rec("aa"))
        with store.results_path.open("a") as fh:
            fh.write("{torn json!!\n")           # unparseable
            fh.write('{"sound": true}\n')        # keyless
        store.append(_rec("bb"))
        records = store.load()
        assert set(records) == {"aa", "bb"}
        assert store.quarantined == 2
        quarantined = store.quarantine_path.read_text().splitlines()
        assert "{torn json!!" in quarantined
        # The rewritten results file is clean: a second load sees no rot.
        assert store.load() == records
        assert store.quarantined == 0

    def test_missing_store_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "fresh").load() == {}

    def test_completed_keys_skips_error_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(_rec("ok"))
        store.append(_rec("boom", sound=False, error="Traceback ..."))
        assert store.completed_keys() == {"ok"}


class TestSummary:
    def test_summary_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(_rec("a", tightness=0.4))
        store.append(_rec("b", sound=False, tightness=1.2))
        store.append(_rec("c", sound=False, error="Traceback ...", tightness=0.0))
        store.append(_rec("d", budget_ok=False, tightness=0.7))
        summary = store.write_summary(extra={"campaign": "t"})
        assert summary["cells"] == 4
        assert summary["sound"] == 2
        assert summary["unsound"] == 1          # error cells counted apart
        assert summary["errors"] == 1
        assert summary["budget_violations"] == 1
        assert summary["max_tightness"] == pytest.approx(1.2)
        assert summary["campaign"] == "t"
        on_disk = json.loads(store.summary_path.read_text())
        assert on_disk == summary


class TestDiff:
    def test_newly_unsound_cell_is_a_regression(self):
        old = {"a": _rec("a"), "b": _rec("b")}
        new = {"a": _rec("a"), "b": _rec("b", sound=False)}
        diff = diff_records(old, new)
        assert diff.regressions == ("b",)
        assert not diff.clean
        assert any("REGRESSION b" in ln for ln in diff.summary_lines())

    def test_worker_error_is_a_regression_too(self):
        diff = diff_records(
            {"a": _rec("a")}, {"a": _rec("a", error="Traceback ...")}
        )
        assert diff.regressions == ("a",)

    def test_fixes_added_removed(self):
        old = {"a": _rec("a", sound=False), "gone": _rec("gone")}
        new = {"a": _rec("a"), "fresh": _rec("fresh")}
        diff = diff_records(old, new)
        assert diff.fixes == ("a",)
        assert diff.added == ("fresh",)
        assert diff.removed == ("gone",)
        assert diff.clean

    def test_budget_regression_flagged(self):
        diff = diff_records(
            {"a": _rec("a")}, {"a": _rec("a", budget_ok=False)}
        )
        assert diff.budget_regressions == ("a",)
        assert not diff.clean

    def test_diff_stores_end_to_end(self, tmp_path):
        old, new = ResultStore(tmp_path / "old"), ResultStore(tmp_path / "new")
        old.append(_rec("a"))
        new.append(_rec("a", sound=False))
        diff = diff_stores(tmp_path / "old", tmp_path / "new")
        assert diff.regressions == ("a",)
