#!/usr/bin/env python3
"""Simulation I of the paper (Fig. 3 / Fig. 4): one regulated end host.

Feeds three identical 1.5 Mbps-class VBR video streams through one end
host under both regulator families, across light and heavy load, on
both simulation backends (exact packet DES and the vectorised fluid
engine), and compares the measured worst-case delays with the
analytical bounds of Remark 1 and Theorem 2.

Run:  python examples/single_host_regulation.py
"""

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_homogeneous,
    theorem2_wdb_homogeneous,
)
from repro.core.threshold import homogeneous_threshold
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_host
from repro.simulation.host_sim import simulate_regulated_host

K = 3
HORIZON = 15.0  # seconds of traffic
MTU = 0.002     # link packets of 2 ms serialisation time


def measure(u: float) -> None:
    rho = u / K
    # "each of the three groups is fed with the same video stream":
    # one realisation shared by the three flows.
    stream = VBRVideoSource(rho).generate(HORIZON, rng=2006).fragment(MTU)
    sigma = max(stream.empirical_sigma(rho), 1e-9)
    flows = [ArrivalEnvelope(sigma, rho)] * K
    traces = [stream] * K

    print(f"\n-- aggregate utilisation u = {u:.2f} "
          f"(per-flow rho = {rho:.3f}, measured sigma = {sigma:.4f}) --")
    for mode, bound in (
        ("sigma-rho", remark1_wdb_homogeneous(K, sigma, rho)),
        ("sigma-rho-lambda", theorem2_wdb_homogeneous(K, sigma, rho)),
    ):
        fluid = simulate_fluid_host(
            traces, flows, mode=mode, discipline="adversarial", dt=5e-4
        )
        des = simulate_regulated_host(
            traces, flows, mode=mode, discipline="adversarial"
        )
        print(f"  {mode:>18s}:  DES {des.worst_case_delay:7.3f} s | "
              f"fluid {fluid.worst_case_delay:7.3f} s | "
              f"analytic bound {bound:7.3f} s")


def main() -> None:
    threshold = homogeneous_threshold(K, aggregate=True)
    print(f"theoretical aggregate threshold K*rho* = {threshold:.3f}")
    print("expected: the (sigma,rho) system wins below it, the "
          "(sigma,rho,lambda) system wins above it")
    for u in (0.45, 0.70, threshold, 0.95):
        measure(float(np.round(u, 3)))


if __name__ == "__main__":
    main()
