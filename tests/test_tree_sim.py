"""Whole-tree DES vs the critical-path reduction (DESIGN.md validation)."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.overlay.groups import MultiGroupNetwork
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_chain
from repro.simulation.tree_sim import simulate_multicast_tree
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone


@pytest.fixture(scope="module")
def world():
    bb = fig5_backbone()
    net = attach_hosts(bb, 16, rng=42)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=42)
    trees = mgn.build_all_trees("dsct", rng=4)
    u = 0.85
    rho = u / 3
    stream = VBRVideoSource(rho).generate(4.0, rng=6).fragment(0.002)
    traces = [stream] * 3
    envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * 3
    return mgn, trees, traces, envs


class TestWholeTree:
    def test_every_member_receives(self, world):
        mgn, trees, traces, envs = world
        res = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency, mode="sigma-rho",
        )
        assert set(res.per_receiver_worst) == trees[0].members()

    def test_root_delivery_is_fast(self, world):
        mgn, trees, traces, envs = world
        res = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency, mode="sigma-rho",
        )
        root = trees[0].root
        # The root only crosses its own pipeline once.
        assert res.per_receiver_worst[root] <= res.worst_case_delay

    def test_deeper_receivers_wait_longer_on_average(self, world):
        mgn, trees, traces, envs = world
        res = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency, mode="sigma-rho",
        )
        tree = trees[0]
        by_depth: dict[int, list[float]] = {}
        for h, d in res.per_receiver_worst.items():
            by_depth.setdefault(tree.depth(h), []).append(d)
        depths = sorted(by_depth)
        means = [float(np.mean(by_depth[d])) for d in depths]
        assert means[-1] > means[0]

    def test_vacation_mode_runs(self, world):
        mgn, trees, traces, envs = world
        res = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency, mode="sigma-rho-lambda",
        )
        assert res.worst_case_delay > 0
        assert res.events > 0


class TestCriticalPathReduction:
    """The methodology claim of DESIGN.md: the critical-path chain with
    Theorem-7 (adversarial per-hop) accounting upper-bounds the
    whole-tree FIFO measurement on the same workload."""

    @pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
    def test_reduction_dominates_whole_tree(self, world, mode):
        mgn, trees, traces, envs = world
        tree = trees[0]
        whole = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency, mode=mode, discipline="fifo",
        )
        path = tree.critical_path()
        hops = len(path) - 1
        propagation = [0.0] + [
            float(mgn.latency[path[i - 1], path[i]]) for i in range(1, hops)
        ]
        chain = simulate_fluid_chain(
            traces[0], [[traces[1], traces[2]]] * hops, envs,
            mode=mode, discipline="adversarial",
            propagation=propagation, dt=1e-3,
        )
        estimate = chain.worst_case_delay + float(
            mgn.latency[path[-2], path[-1]]
        )
        assert estimate >= whole.worst_case_delay * 0.95, (
            f"critical-path estimate {estimate:.3f} under-covers "
            f"whole-tree {whole.worst_case_delay:.3f}"
        )

    def test_whole_tree_receiver_depth_matches_critical_path(self, world):
        mgn, trees, traces, envs = world
        tree = trees[0]
        whole = simulate_multicast_tree(
            trees, 0, traces, envs, mgn.latency,
            mode="sigma-rho", discipline="fifo",
        )
        worst_depth = tree.depth(whole.worst_receiver)
        max_depth = tree.height - 1
        # The worst receiver sits in the deepest layer (or one above;
        # queueing noise can promote a sibling layer).
        assert worst_depth >= max_depth - 1
