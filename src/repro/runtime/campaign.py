"""Campaign driver: executor-parallel batches over a persistent store.

A *campaign* is a (usually generated) scenario matrix evaluated through
a :class:`repro.runtime.executor.Executor` with its verdicts appended
to a :class:`repro.runtime.store.ResultStore`.  On top of
:func:`repro.scenarios.runner.run_batch` this layer adds:

* **resume** -- cells whose content-hashed key already has a completed
  record in the store are skipped, so an interrupted thousand-cell
  campaign continues where it stopped and a finished one re-runs as a
  no-op;
* **persistence** -- one store record per cell (JSONL or SQLite
  backend, see :mod:`repro.runtime.store`) plus a rewritten
  ``summary.json`` after every run, diffable across campaigns;
* **sharding** -- ``shard="i/N"`` deterministically partitions the
  matrix by cell fingerprint, so N independent processes (or hosts)
  each run their slice against one shared SQLite store, or per-shard
  stores later joined by :func:`repro.runtime.store.merge_stores`;
* **perf budgets** -- per-cell wall-clock budgets (see
  ``Scenario.perf_budget``) verdicted alongside soundness.

:class:`CampaignConfig` is the JSON-loadable description the CLI's
``--campaign`` flag consumes (see ``examples/campaign_thousand.json``).
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import time
from contextlib import nullcontext
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.runtime import faults
from repro.runtime.executor import Executor, RetryPolicy, _error_head
from repro.runtime.faults import FaultPlan, InjectedFault
from repro.runtime.store import (
    ResultStore,
    cell_key,
    fingerprint_shard,
    open_store,
    spec_fingerprint,
)
from repro.scenarios.runner import BatchReport, ScenarioOutcome, run_batch
from repro.scenarios.spec import Scenario
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "append_results_with_retry",
    "build_campaign",
    "outcome_record",
    "parse_shard",
    "shard_scenarios",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignConfig:
    """JSON-loadable description of a generated campaign matrix."""

    name: str = "campaign"
    count: int = 1000
    seed: int = 0
    max_k: int = 6
    max_hops: int = 3
    horizon: float = 2.0
    dt: float = 2e-3
    #: Per-cell wall-clock budget in seconds (0 disables).
    perf_budget: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.count, "count")
        check_positive_int(self.max_k, "max_k")
        check_positive_int(self.max_hops, "max_hops")
        check_positive(self.horizon, "horizon")
        check_positive(self.dt, "dt")
        if self.perf_budget < 0:
            raise ValueError("perf_budget must be >= 0 (0 disables)")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignConfig":
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict):
            raise ValueError(f"campaign config {path} must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"campaign config {path} has unknown keys {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**payload)


def build_campaign(config: CampaignConfig) -> list[Scenario]:
    """Generate the campaign's scenario matrix from its config."""
    from repro.scenarios.generator import generate_scenarios

    return generate_scenarios(
        config.count,
        seed=config.seed,
        max_k=config.max_k,
        max_hops=config.max_hops,
        horizon=config.horizon,
        dt=config.dt,
        perf_budget=config.perf_budget,
    )


def parse_shard(spec: Union[str, None, tuple[int, int]]) -> Optional[tuple[int, int]]:
    """Parse an ``"i/N"`` shard spec into a 0-based ``(index, total)``.

    ``i`` is 1-based on the command line (``--shard 1/2`` and
    ``--shard 2/2`` are the two halves); a ``(index, total)`` tuple is
    validated and passed through; ``None`` means no sharding.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        parts = spec.split("/")
        try:
            if len(parts) != 2:
                raise ValueError(spec)
            i, total = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/N' (e.g. 1/2), got {spec!r}"
            ) from None
        if total < 1 or not 1 <= i <= total:
            raise ValueError(
                f"shard index must lie in 1..N, got {spec!r}"
            )
        return i - 1, total
    index, total = spec
    if total < 1 or not 0 <= index < total:
        raise ValueError(f"shard (index, total) out of range: {spec!r}")
    return int(index), int(total)


def shard_scenarios(
    scenarios: Sequence[Scenario], shard: Union[str, None, tuple[int, int]]
) -> list[Scenario]:
    """The sub-matrix a shard owns, partitioned by cell fingerprint.

    Pure content partitioning (``fingerprint_shard``): every cell lands
    in exactly one shard, the assignment is identical on every host and
    for any matrix ordering, and it ignores seeds and verdict knobs --
    so concurrent shard runs against one store (or per-shard stores
    merged later) reproduce the unsharded campaign record-for-record.
    """
    parsed = parse_shard(shard)
    if parsed is None:
        return list(scenarios)
    index, total = parsed
    return [
        sc
        for sc in scenarios
        if fingerprint_shard(spec_fingerprint(sc), total) == index
    ]


def outcome_record(outcome: ScenarioOutcome) -> dict:
    """The store record (schema in :mod:`repro.runtime.store`)."""
    sc = outcome.scenario
    return {
        "key": cell_key(sc),
        "fingerprint": spec_fingerprint(sc),
        "name": sc.name,
        "sound": bool(outcome.sound),
        "error": outcome.error,
        # json emits Infinity/NaN for non-finite floats and reads them back.
        "measured": float(outcome.measured),
        "bound": float(outcome.bound),
        "baseline_bound": float(outcome.baseline_bound),
        "eps": float(outcome.eps),
        "tightness": float(outcome.tightness),
        "eff_mode": outcome.eff_mode,
        "eff_backend": outcome.eff_backend,
        "hops": int(outcome.hops),
        "propagation_total": float(outcome.propagation_total),
        "events": int(outcome.events),
        "cancelled_events": int(outcome.cancelled_events),
        "height_ok": bool(outcome.height_ok),
        "wall_time": float(outcome.wall_time),
        "perf_budget": float(sc.perf_budget),
        "budget_ok": bool(outcome.budget_ok),
        "tags": list(sc.tags),
        # Cost-model features (spec side): together with ``wall_time``
        # these let CellCostModel.fit re-derive per-backend cost
        # coefficients from any real campaign store.  ``primed`` is an
        # execution fact (closed-form fast path used), which the fit
        # uses to price primed and evented cells separately.
        "backend": sc.backend,
        "discipline": sc.discipline,
        "topology": sc.topology,
        "mode": sc.mode,
        "primed": bool(outcome.primed),
        "k": int(sc.k),
        "tree_members": int(sc.tree_members),
        "horizon": float(sc.horizon),
        "dt": float(sc.dt),
        # The full spec (v2): makes the store self-contained, so
        # ``scenarios curate`` can re-materialise promising cells and
        # any record can be re-run without the generating code.
        "spec": dataclasses.asdict(sc),
    }


@dataclass(frozen=True)
class CampaignReport:
    """One campaign run: freshly evaluated cells + resume accounting.

    ``skipped_violations`` / ``skipped_budget_violations`` count this
    campaign's *resumed* cells whose stored verdicts already failed --
    skipping a known-bad cell must not launder it into a clean exit.
    (Stored budget verdicts stand as recorded; resume does not re-judge
    them against a changed budget.)
    """

    report: BatchReport
    requested: int
    skipped: int
    skipped_violations: int = 0
    skipped_budget_violations: int = 0
    store_root: Optional[str] = None
    store_kind: Optional[str] = None
    store_records: int = 0
    quarantined: int = 0
    #: ``(index, total)`` when this run evaluated one shard only.
    shard: Optional[tuple[int, int]] = None
    #: Cost-model refit ledger (``CellCostModel.fit(report=...)``) when
    #: a resume refit ran; ``None`` otherwise.  Surfaced by the CLI's
    #: ``--profile`` so silently dropped degenerate samples are visible.
    cost_fit: Optional[dict] = None
    #: Telemetry records persisted to the store's telemetry table/file.
    telemetry_records: int = 0
    #: Fault-tolerance accounting (attempt ledger): cells that needed
    #: more than one attempt, cells that exhausted all retries (poison,
    #: persisted to the store's poison channel), and store-write
    #: retries spent (injected faults, transient I/O, SQLITE_BUSY).
    retried_cells: int = 0
    poisoned_cells: int = 0
    store_retries: int = 0

    @property
    def evaluated(self) -> int:
        return self.report.n_scenarios

    @property
    def clean(self) -> bool:
        """No soundness/budget failure, fresh or resumed from the store."""
        return (
            not self.report.violations
            and not self.report.perf_violations
            and self.skipped_violations == 0
            and self.skipped_budget_violations == 0
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"cells requested: {self.requested}"
            + (
                f" (shard {self.shard[0] + 1}/{self.shard[1]})"
                if self.shard
                else ""
            ),
            f"cells skipped (already in store): {self.skipped}",
        ]
        if self.skipped_violations or self.skipped_budget_violations:
            lines.append(
                f"  of which already-failed in store: "
                f"{self.skipped_violations} unsound, "
                f"{self.skipped_budget_violations} over budget"
            )
        lines.extend(self.report.summary_lines())
        if self.retried_cells or self.poisoned_cells or self.store_retries:
            lines.append(
                f"fault tolerance: {self.retried_cells} cells retried "
                f"({self.retried_cells - self.poisoned_cells} recovered, "
                f"{self.poisoned_cells} poison), "
                f"{self.store_retries} store-write retries"
            )
        if self.store_root is not None:
            lines.append(
                f"store: {self.store_root} "
                f"[{self.store_kind or 'jsonl'}] ({self.store_records} records"
                + (
                    f", {self.quarantined} corrupt lines quarantined)"
                    if self.quarantined
                    else ")"
                )
            )
        return lines


def _empty_report() -> BatchReport:
    return BatchReport(outcomes=(), elapsed=0.0)


def run_campaign(
    scenarios: Sequence[Scenario],
    *,
    executor: Optional[Executor] = None,
    store: Optional[Union[str, Path, ResultStore]] = None,
    resume: bool = False,
    shard: Union[str, None, tuple[int, int]] = None,
    progress: Optional[callable] = None,
    tick: Optional[callable] = None,
    cost_model: Union[str, None, "CellCostModel"] = "auto",
    group_cells: Optional[bool] = None,
    batch_realise: Optional[bool] = None,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> CampaignReport:
    """Evaluate ``scenarios`` with persistence and resume/skip.

    With ``resume=True`` (requires ``store``), cells whose key already
    has a completed (non-error) record are skipped; crashed cells are
    retried, and skipped cells whose stored verdict already failed are
    surfaced (``skipped_violations``) so a resumed campaign can never
    report cleaner than the store it resumed from.  Every freshly
    evaluated cell is appended to the store and ``summary.json`` is
    rewritten.  ``tick(done, total)`` (optional) streams live progress
    from the executor as chunks complete.

    ``store`` accepts a store instance, a directory, or a backend URL
    (``sqlite:DIR`` / ``jsonl:DIR``, see
    :func:`repro.runtime.store.open_store`).  ``shard`` (``"i/N"`` or a
    0-based ``(index, total)``) restricts the run to the cells this
    shard owns by content fingerprint: concurrent shard processes can
    fill one shared SQLite store (or per-shard stores merged later by
    :func:`repro.runtime.store.merge_stores`) and together reproduce
    the unsharded campaign exactly.

    ``cost_model`` steers the parallel scheduler (dearest-first,
    cost-equalised chunks): ``"auto"`` (default) uses the shipped
    coefficients -- refitted from the store's recorded per-cell wall
    clocks when resuming over existing records -- ``None`` disables
    cost-aware scheduling, and an explicit
    :class:`repro.runtime.cost.CellCostModel` is used as given.
    Scheduling-only in every case: cell outcomes are bit-identical.

    ``group_cells`` is forwarded to :func:`run_batch`: ``None`` (the
    default) lets the structure-of-arrays grouped evaluator kick in
    automatically on in-process executors, ``True``/``False`` force it
    on/off.  Throughput-only -- outcomes and store records are
    bit-identical either way (``wall_time`` attribution aside).
    ``batch_realise`` rides along the same way: ``None`` (the default)
    lets grouped evaluation batch trace synthesis across cells,
    ``True``/``False`` force it; bit-identical in every case.

    ``retry``/``cell_timeout``/``fault_plan`` are the fault-tolerance
    knobs (all off by default with zero overhead): bounded per-cell
    retries with replayable backoff, a per-attempt wall-clock cap, and
    the deterministic chaos harness (:mod:`repro.runtime.faults`).
    With a plan armed, store writes are retried under the same budget,
    a heal pass quarantines any torn write residue before the summary
    is computed, and the per-cell attempt ledger lands in the
    telemetry channel (``kind == "attempts"``).  Cells that exhaust
    all retries are appended to the store's poison channel with their
    diagnosis; their error records keep ``--resume`` retrying exactly
    them.  Determinism under retry is the campaign invariant: cell
    seeds derive from the spec alone, never the attempt number, so a
    run that survived injected worker kills writes a ``summary.json``
    byte-identical to an undisturbed run.
    """
    from repro.runtime.cost import CellCostModel

    scenarios = shard_scenarios(scenarios, shard)
    result_store: Optional[ResultStore] = None
    if store is not None:
        result_store = open_store(store)
    if resume and result_store is None:
        raise ValueError("resume=True requires a store")

    todo = scenarios
    skipped = skipped_violations = skipped_budget = 0
    quarantined = 0
    stored_records: dict = {}
    if resume:
        stored_records = result_store.load()
        quarantined = result_store.quarantined
        todo = []
        for sc in scenarios:
            rec = stored_records.get(cell_key(sc))
            if rec is None or rec.get("error"):
                todo.append(sc)
                continue
            skipped += 1
            if not rec.get("sound"):
                skipped_violations += 1
            if rec.get("budget_ok") is False:
                skipped_budget += 1

    cost_fit: Optional[dict] = None
    if cost_model == "auto":
        model = CellCostModel()
        if stored_records:
            # Real campaigns beat shipped coefficients: refit from the
            # store's recorded per-cell wall clocks.
            cost_fit = {}
            model = CellCostModel.fit(
                stored_records.values(), base=model, report=cost_fit
            )
    else:
        model = cost_model

    report = (
        run_batch(
            todo,
            executor=executor,
            progress=progress,
            tick=tick,
            cost_model=model,
            group_cells=group_cells,
            batch_realise=batch_realise,
            retry=retry,
            cell_timeout=cell_timeout,
            fault_plan=fault_plan,
        )
        if todo
        else _empty_report()
    )

    retried = sum(
        1 for o in report.outcomes if o.attempts > 1 or o.attempt_errors
    )
    poison = (
        [o for o in report.outcomes if o.error is not None]
        if retry is not None and retry.max_attempts > 1
        else []
    )

    store_records = 0
    telemetry_count = 0
    store_retries = 0
    if result_store is not None:
        store_retries = append_results_with_retry(
            result_store,
            [outcome_record(o) for o in report.outcomes],
            retry=retry,
            fault_plan=fault_plan,
        )
        if poison:
            result_store.append_poison(
                {
                    "key": cell_key(o.scenario),
                    "name": o.scenario.name,
                    "attempts": int(o.attempts),
                    "error_head": _error_head(o.error),
                    "attempt_errors": list(o.attempt_errors),
                }
                for o in poison
            )
        if fault_plan is not None:
            # Heal pass: an injected torn write leaves residue on disk
            # exactly like a real crash; loading quarantines it (and
            # rewrites the JSONL file clean) *before* the summary
            # aggregates, so a recovered chaos campaign summarises
            # byte-identically to an undisturbed run.
            result_store.load()
            quarantined = max(quarantined, result_store.quarantined)
        telemetry_count = _persist_telemetry(
            result_store,
            report,
            model=model,
            cost_fit=cost_fit,
            store_retries=store_retries,
        )
        # The summary is deterministic (content-derived aggregates
        # only, no run-local extras): a sharded run's final summary is
        # bit-identical to the serial one over the same records.
        # Telemetry lives in its own table/file and never feeds it.
        summary = result_store.write_summary()
        store_records = int(summary["cells"])
        quarantined = max(quarantined, result_store.quarantined)
        store_retries += getattr(result_store, "busy_retries", 0)
    return CampaignReport(
        report=report,
        requested=len(scenarios),
        skipped=skipped,
        skipped_violations=skipped_violations,
        skipped_budget_violations=skipped_budget,
        store_root=str(result_store.root) if result_store else None,
        store_kind=result_store.kind if result_store else None,
        store_records=store_records,
        quarantined=quarantined,
        shard=parse_shard(shard),
        cost_fit=cost_fit,
        telemetry_records=telemetry_count,
        retried_cells=retried,
        poisoned_cells=len(poison),
        store_retries=store_retries,
    )


#: Store-append retry budget when no explicit policy is given but a
#: fault plan is active (the plan's own max_attempt still bounds how
#: long injection can keep failing a write).
_STORE_APPEND_BACKOFF_S = 0.05


def append_results_with_retry(
    result_store: ResultStore,
    records: list,
    *,
    retry: Optional[RetryPolicy],
    fault_plan: Optional[FaultPlan],
) -> int:
    """Append the result batch, absorbing retryable store failures.

    Injected store faults (chaos harness), transient ``OSError`` and
    SQLite lock errors are retried under the campaign's retry budget;
    the whole batch is re-appended each time, which is safe because
    records are keyed last-record-wins and torn residue is quarantined
    by the next load.  The attempt number is published to the fault
    layer so injected store faults respect ``max_attempt`` -- bounded
    retries provably recover.  Returns the number of retries spent.

    The campaign driver and the lease-coordinator workers
    (:mod:`repro.runtime.coordinator`) share this as their one
    crash-consistent commit path.
    """
    attempts = retry.max_attempts if retry is not None else 1
    if fault_plan is not None:
        attempts = max(attempts, fault_plan.max_attempt + 1)
    for attempt in range(1, attempts + 1):
        ctx = (
            faults.activate(fault_plan)
            if fault_plan is not None
            else nullcontext()
        )
        try:
            with ctx, faults.attempt_scope(attempt):
                result_store.append_many(records)
            return attempt - 1
        except (InjectedFault, OSError, sqlite3.OperationalError):
            if attempt >= attempts:
                raise
            time.sleep(
                retry.delay(attempt, token="store-append")
                if retry is not None
                else _STORE_APPEND_BACKOFF_S
            )
    return attempts - 1  # pragma: no cover - loop always returns/raises


#: Backwards-compatible private alias (pre-PR-10 internal name).
_append_results_with_retry = append_results_with_retry


def _persist_telemetry(
    result_store: ResultStore,
    report: BatchReport,
    *,
    model=None,
    cost_fit: Optional[dict] = None,
    store_retries: int = 0,
) -> int:
    """Append this run's telemetry to the store's telemetry channel.

    One ``kind == "cell"`` record per outcome that carried telemetry
    (annotated with the cell key, effective backend, recorded wall
    clock and the scheduler's predicted cost, so the report's
    calibration table needs no join), the grouped evaluator's
    ``grouping``/``grouping_summary`` records, one ``fit`` record when
    a resume refit ran, one ``attempts`` ledger record per cell that
    needed more than a single attempt (fault kinds, final
    disposition), and one ``store_retries`` record when store writes
    had to be retried.  Returns the record count; a disabled telemetry
    switch (or a run with no telemetry) appends nothing.
    """
    from repro.runtime.telemetry import cell_record, enabled

    if not enabled():
        return 0
    records: list[dict] = []
    for o in report.outcomes:
        if o.attempts <= 1 and not o.attempt_errors:
            continue
        records.append(
            {
                "kind": "attempts",
                "key": cell_key(o.scenario),
                "name": o.scenario.name,
                "attempts": int(o.attempts),
                "faults": list(o.attempt_errors),
                "disposition": "poison" if o.error is not None else "recovered",
            }
        )
    for o in report.outcomes:
        if o.telemetry is None:
            continue
        predicted = None
        if model is not None:
            try:
                predicted = float(model.estimate(o.scenario))
            except Exception:
                predicted = None
        records.append(
            cell_record(
                o.telemetry,
                key=cell_key(o.scenario),
                eff_backend=o.eff_backend,
                wall_time=float(o.wall_time),
                predicted_cost=predicted,
                primed=bool(o.primed),
            )
        )
    for g in report.group_stats:
        records.append(dict(g))
    if cost_fit:
        records.append({"kind": "fit", **cost_fit})
    if store_retries:
        records.append(
            {
                "kind": "store_retries",
                "append_retries": int(store_retries),
                "busy_retries": int(
                    getattr(result_store, "busy_retries", 0)
                ),
                "source": "campaign",
            }
        )
    if records:
        result_store.append_telemetry(records)
    return len(records)
