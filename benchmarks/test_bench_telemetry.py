"""Telemetry overhead benchmark (the PR-7 observability numbers).

Telemetry is on by default, so its cost rides every campaign ever run
from here on -- the acceptance bar is a hard <= 5% overhead on the
end-to-end throughput path.  Collection is designed to stay inside
that: plain attribute writes and dict bumps against a thread-local
active cell, no I/O, no locks, no string formatting on the hot path.

The measured workload is the grouped closed-form campaign from the
PR-6 benchmarks (homogeneous shared-CBR adversarial hosts): the
fastest per-cell path in the repo, i.e. the one where a fixed per-cell
collection cost is the *largest* relative fraction.  Per-cell and
grouped paths are both measured; verdicts are asserted identical with
collection on and off before any timing is trusted.

Floors are ratios of best-of-N wall clocks with a small absolute
cushion (container timer noise on sub-second runs easily exceeds 5%
of a single cell), mirroring the style of the other bench modules.
The off/on rounds are *interleaved* so a transient load spike on the
shared CI box lands on both sides of the ratio instead of flaking one.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.runtime import set_telemetry_enabled, telemetry_enabled
from repro.runtime.executor import SerialExecutor
from repro.scenarios import run_batch
from repro.scenarios.spec import Scenario

#: Hard acceptance bar: telemetry-on wall clock vs telemetry-off.
OVERHEAD_CEILING = 1.05
#: Absolute cushion (seconds) so sub-second timer noise cannot flake
#: a ratio assertion that the averages comfortably meet.
ABS_CUSHION_S = 0.05

#: Interleaved off/on timing rounds per path; best-of each side.
ROUNDS = 4

N_CELLS = 192


def _closed_form_matrix(n: int = N_CELLS, k: int = 12):
    """Homogeneous shared-CBR adversarial hosts (one SoA group): the
    cheapest cells per unit, hence the worst case for fixed overhead."""
    return [
        Scenario(
            name=f"tel-{i}",
            kinds=("cbr",) * k,
            utilization=0.55 + 0.0005 * (i % 64),
            mode="sigma-rho",
            backend="fluid",
            horizon=0.5,
            seed=i,
        )
        for i in range(n)
    ]


def _timed_run(cells, *, telemetry: bool, grouped: bool):
    was = telemetry_enabled()
    set_telemetry_enabled(telemetry)
    try:
        t0 = time.perf_counter()
        report = run_batch(
            cells, executor=SerialExecutor(), group_cells=grouped
        )
        return time.perf_counter() - t0, report
    finally:
        set_telemetry_enabled(was)


def _off_on_best(cells, *, grouped: bool):
    """Best-of-N interleaved off/on timings (noise hits both sides)."""
    t_off = t_on = float("inf")
    off = on = None
    for _ in range(ROUNDS):
        t, off = _timed_run(cells, telemetry=False, grouped=grouped)
        t_off = min(t_off, t)
        t, on = _timed_run(cells, telemetry=True, grouped=grouped)
        t_on = min(t_on, t)
    return t_off, t_on, off, on


def test_telemetry_overhead_under_five_percent(
    benchmark, bench_pr7, artifact_report
):
    cells = _closed_form_matrix()

    def measure():
        return {
            "grouped": _off_on_best(cells, grouped=True),
            "percell": _off_on_best(cells, grouped=False),
        }

    runs = run_once(benchmark, measure)
    for path, (t_off, t_on, off, on) in runs.items():
        # Verdicts first: collection must be invisible to results.
        for a, b in zip(off.outcomes, on.outcomes):
            assert a.measured == b.measured and a.bound == b.bound
            assert a.sound == b.sound and a.error == b.error
        assert t_on <= t_off * OVERHEAD_CEILING + ABS_CUSHION_S, (
            f"{path}: telemetry overhead "
            f"{100.0 * (t_on / t_off - 1.0):.1f}% exceeds the 5% bar"
        )

    t_off_grp, t_on_grp, _, on_grp = runs["grouped"]
    t_off_per, t_on_per, _, _ = runs["percell"]
    n_tel = sum(1 for o in on_grp.outcomes if o.telemetry is not None)
    assert n_tel == N_CELLS  # collection actually ran
    bench_pr7["telemetry_overhead"] = {
        "cells": N_CELLS,
        "grouped_off_s": t_off_grp,
        "grouped_on_s": t_on_grp,
        "grouped_overhead": t_on_grp / t_off_grp - 1.0,
        "percell_off_s": t_off_per,
        "percell_on_s": t_on_per,
        "percell_overhead": t_on_per / t_off_per - 1.0,
        "ceiling": OVERHEAD_CEILING - 1.0,
    }
    artifact_report.append(
        "== Telemetry overhead (closed-form fluid campaign, "
        f"{N_CELLS} cells) ==\n"
        f"grouped:  off {1e3 * t_off_grp:7.1f} ms   on {1e3 * t_on_grp:7.1f} ms"
        f"   overhead {100.0 * (t_on_grp / t_off_grp - 1.0):+5.1f}%\n"
        f"per-cell: off {1e3 * t_off_per:7.1f} ms   on {1e3 * t_on_per:7.1f} ms"
        f"   overhead {100.0 * (t_on_per / t_off_per - 1.0):+5.1f}%"
    )
